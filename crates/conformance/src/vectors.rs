//! Golden conformance vectors: checked-in JSONL files recording, for nine
//! reference formats, the exact decoded value of (a sample of) every code
//! under a fixed, deterministic metadata context — plus an FNV-1a hash over
//! the *entire* code space so even unsampled codes are pinned.
//!
//! Regressions diff byte-for-byte: the JSON writer in `crates/trace` is
//! deterministic (insertion-ordered objects, shortest-round-trip floats).

use crate::oracle::probe_tensors;
use formats::{FormatSpec, Metadata};
use trace::Json;

/// The formats with checked-in golden vectors: FP8, FP16, bf16, INT8, BFP,
/// AFP, plus one representative per microscaling-era family (MX, P3109,
/// GoldenFloat).
pub const GOLDEN_SPECS: &[&str] = &[
    "fp:e4m3",
    "fp:e5m10",
    "fp:e8m7",
    "int:8",
    "bfp:e5m5:b16",
    "afp:e4m3",
    "mx:fp4e2m1:b32",
    "p3109:e4m3",
    "gf:8",
];

/// Sampling stride for wide code spaces: every code for ≤8-bit formats,
/// every 257th code (coprime with 2^16) for 16-bit ones. The FNV hash
/// always covers all codes.
fn stride_for(bit_width: u32) -> u64 {
    if bit_width <= 8 {
        1
    } else {
        257
    }
}

/// File name of a spec's golden vector, derived from the format name.
pub fn golden_file_name(spec: &FormatSpec) -> String {
    format!("{}.jsonl", spec.build().name())
}

fn meta_json(meta: &Metadata) -> Json {
    match meta {
        Metadata::None => Json::Null,
        Metadata::Scale(s) => Json::obj([
            ("kind", Json::Str("scale".into())),
            ("bits", Json::Str(format!("{:#010x}", s.to_bits()))),
            ("value", Json::from_f32(*s)),
        ]),
        Metadata::SharedExponents { codes, block_size, exp_bits } => Json::obj([
            ("kind", Json::Str("shared_exponents".into())),
            ("exp_bits", Json::Num(*exp_bits as f64)),
            (
                "block_size",
                if *block_size == usize::MAX {
                    Json::Str("tensor".into())
                } else {
                    Json::Num(*block_size as f64)
                },
            ),
            ("codes", Json::Arr(codes.iter().map(|&c| Json::Num(c as f64)).collect())),
        ]),
        Metadata::ExpBias { bias, bias_bits } => Json::obj([
            ("kind", Json::Str("exp_bias".into())),
            ("bias", Json::Num(*bias as f64)),
            ("bias_bits", Json::Num(*bias_bits as f64)),
        ]),
    }
}

/// Generates the golden vector text for one format: a header line followed
/// by one line per sampled code.
pub fn generate(spec: &FormatSpec) -> String {
    let format = spec.build();
    let w = format.bit_width();
    assert!(w <= 16, "golden vectors cover ≤16-bit formats, {} is {w}-bit", format.name());
    let probe = probe_tensors().remove(0);
    let q = format.real_to_format_tensor(&probe);
    let stride = stride_for(w);
    let total = 1u64 << w;

    // FNV-1a 64 over the little-endian f32 bits of every decoded code.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut entries: Vec<String> = Vec::new();
    for code in 0..total {
        let bits = formats::Bitstring::from_u64(code, w as usize);
        let v = format.format_to_real(&bits, &q.meta, 0);
        for byte in v.to_bits().to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        if code % stride == 0 {
            entries.push(
                Json::obj([
                    ("code", Json::Str(format!("{code:#x}"))),
                    ("value_bits", Json::Str(format!("{:#010x}", v.to_bits()))),
                    ("value", Json::from_f32(v)),
                ])
                .to_compact(),
            );
        }
    }

    let header = Json::obj([
        ("schema", Json::Str("goldeneye.conformance.vectors.v1".into())),
        ("spec", Json::Str(spec.to_string())),
        ("format", Json::Str(format.name())),
        ("bit_width", Json::Num(w as f64)),
        ("context", meta_json(&q.meta)),
        ("codes", Json::Num(total as f64)),
        ("stride", Json::Num(stride as f64)),
        ("entries", Json::Num(entries.len() as f64)),
        ("fnv1a64", Json::Str(format!("{hash:#018x}"))),
    ]);

    let mut out = header.to_compact();
    out.push('\n');
    for e in entries {
        out.push_str(&e);
        out.push('\n');
    }
    out
}

/// The checked-in golden text for a spec, if it is one of [`GOLDEN_SPECS`].
pub fn embedded(spec: &FormatSpec) -> Option<&'static str> {
    match golden_file_name(spec).as_str() {
        "fp_e4m3.jsonl" => Some(include_str!("../golden/fp_e4m3.jsonl")),
        "fp_e5m10.jsonl" => Some(include_str!("../golden/fp_e5m10.jsonl")),
        "fp_e8m7.jsonl" => Some(include_str!("../golden/fp_e8m7.jsonl")),
        "int8.jsonl" => Some(include_str!("../golden/int8.jsonl")),
        "bfp_e5m5_b16.jsonl" => Some(include_str!("../golden/bfp_e5m5_b16.jsonl")),
        "afp_e4m3.jsonl" => Some(include_str!("../golden/afp_e4m3.jsonl")),
        "mx_fp4e2m1_b32.jsonl" => Some(include_str!("../golden/mx_fp4e2m1_b32.jsonl")),
        "p3109_e4m3.jsonl" => Some(include_str!("../golden/p3109_e4m3.jsonl")),
        "gf8_e3m4.jsonl" => Some(include_str!("../golden/gf8_e3m4.jsonl")),
        _ => None,
    }
}

/// Regenerates a spec's vector and diffs it byte-for-byte against the
/// checked-in golden text. `Ok(())` when identical; otherwise the first
/// differing line (or a length mismatch) is reported.
pub fn diff(spec: &FormatSpec) -> Result<(), String> {
    let golden =
        embedded(spec).ok_or_else(|| format!("no golden vector checked in for `{spec}`"))?;
    let fresh = generate(spec);
    if golden == fresh {
        return Ok(());
    }
    if golden.is_empty() {
        return Err(format!(
            "golden vector for `{spec}` is empty — regenerate with \
             `goldeneye conformance --write-golden crates/conformance/golden`"
        ));
    }
    for (n, (g, f)) in golden.lines().zip(fresh.lines()).enumerate() {
        if g != f {
            return Err(format!(
                "golden mismatch for `{spec}` at line {}:\n  golden: {g}\n  fresh : {f}",
                n + 1
            ));
        }
    }
    Err(format!(
        "golden mismatch for `{spec}`: line count {} (golden) vs {} (fresh)",
        golden.lines().count(),
        fresh.lines().count()
    ))
}

/// Parses all golden specs.
pub fn golden_specs() -> Vec<FormatSpec> {
    GOLDEN_SPECS.iter().map(|s| s.parse().expect("golden spec parses")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec: FormatSpec = "fp:e4m3".parse().unwrap();
        assert_eq!(generate(&spec), generate(&spec));
    }

    #[test]
    fn header_records_code_space_and_hash() {
        let spec: FormatSpec = "int:8".parse().unwrap();
        let text = generate(&spec);
        let header = trace::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(header.get("codes").and_then(Json::as_u64), Some(256));
        assert_eq!(header.get("entries").and_then(Json::as_u64), Some(256));
        let h = header.get("fnv1a64").and_then(Json::as_str).unwrap();
        assert!(h.starts_with("0x") && h.len() == 18, "{h}");
    }

    #[test]
    fn sixteen_bit_formats_sample_with_stride_257() {
        let spec: FormatSpec = "fp:e5m10".parse().unwrap();
        let text = generate(&spec);
        let header = trace::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(header.get("stride").and_then(Json::as_u64), Some(257));
        assert_eq!(header.get("codes").and_then(Json::as_u64), Some(65536));
        assert_eq!(header.get("entries").and_then(Json::as_u64), Some(256));
    }

    #[test]
    fn golden_vectors_match_checked_in_files() {
        for spec in golden_specs() {
            if let Err(e) = diff(&spec) {
                panic!("{e}");
            }
        }
    }
}
