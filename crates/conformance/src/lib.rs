//! Format-conformance oracle for the GoldenEye number-format zoo.
//!
//! The paper's credibility rests on the format emulation being *bit-exact*:
//! a fault-injection result is only meaningful if the clean quantisation it
//! perturbs is correct. This crate turns that requirement into a set of
//! machine-checked algebraic laws ([`laws::Law`]) and three enforcement
//! layers:
//!
//! 1. **Exhaustive oracle** ([`oracle`]): for every format instance with a
//!    data width ≤ 16 bits, enumerate *all* bit patterns under each probe
//!    metadata context and check decode→encode→decode fixpoints, quantise
//!    idempotence, monotonicity, sign symmetry, range containment (which
//!    subsumes single value-bit flips), and per-metadata-bit flip
//!    invariants.
//! 2. **Differential sweeps** (`tests/conformance.rs`): proptest-driven
//!    comparisons of the fast `quantize_f32` path against the f64
//!    reference, and of `real_to_format_tensor` against the per-element
//!    Method 3 ∘ Method 4 composition — covering the >16-bit formats the
//!    oracle cannot enumerate.
//! 3. **Golden vectors** ([`vectors`]): checked-in JSONL files pinning the
//!    decoded value of every code (hash over the full space, sampled
//!    entries) for six reference formats, diffed byte-for-byte in CI.
//!
//! `goldeneye conformance --all` runs layers 1 and 3 over the standard
//! [`zoo`] and writes a [`report`] artifact.

#![warn(missing_docs)]

pub mod laws;
pub mod oracle;
pub mod report;
pub mod vectors;
pub mod zoo;

pub use laws::{Law, Violation};
pub use oracle::{check_format, FormatReport, EXHAUSTIVE_WIDTH_LIMIT};
pub use zoo::standard_zoo;
