//! The algebraic laws every GoldenEye number format must satisfy.
//!
//! Each law is a machine-checkable statement about the paper's four-method
//! API (§III-B). The oracle ([`crate::oracle`]) checks them exhaustively
//! over the code space of every ≤16-bit format; the sweeps
//! ([`crate::sweep`]) check them statistically for wider formats. DESIGN.md
//! §"Conformance laws" records which formats each law binds and the known
//! intentional deviations.

use std::fmt;

/// A conformance law. `name()` is the stable identifier used in reports,
/// golden vectors, CI output, and test names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Law {
    /// decode→encode→decode is a bitwise fixpoint for every code.
    RoundTrip,
    /// Quantising an already-quantised tensor changes nothing (values
    /// bitwise, metadata equal). INT deviates at the value level (scale
    /// re-derivation drifts ≤1 ulp) but its codes must be stable.
    Idempotence,
    /// The context-fixed quantiser (Method 3 ∘ Method 4) is monotone
    /// non-decreasing. Binds within one metadata context; BFP is only
    /// block-locally monotone by design.
    Monotonicity,
    /// `q(−x) == −q(x)` inside the symmetric part of the range; bitwise
    /// for signed-zero formats, value-level for two's-complement ones.
    SignSymmetry,
    /// Every decoded value — hence every value after any single value-bit
    /// flip, since the flipped pattern is itself an enumerated code — lies
    /// inside the (metadata-scaled) `dynamic_range()`, or is an explicitly
    /// representable Inf/NaN code.
    RangeContainment,
    /// After any single metadata-bit flip, re-interpreted values stay
    /// inside the *flipped* context's representable range.
    MetaFlipRange,
    /// BFP/AFP only: no metadata flip may produce Inf/NaN — those formats
    /// have no such codes (§IV: BFP injections are Inf/NaN-free). INT's
    /// FP32 scale register is exempt: scale flips to Inf/NaN are faithful
    /// hardware behaviour.
    MetaFlipFinite,
    /// FP only: the fast bit-twiddle `quantize_f32` path agrees bitwise
    /// with the exact f64 reference for every input.
    FastSlowAgreement,
    /// Method 1 agrees element-wise (bitwise) with the Method 3 ∘ Method 4
    /// composition under the same metadata, for finite inputs. (±Inf
    /// deviates intentionally: Method 1 saturates, Methods 3/4 keep the
    /// reserved Inf codes.)
    TensorScalarAgreement,
    /// Narrow metadata-free formats only: the cached dequantise LUT (the
    /// error injector's decode fast path) agrees bitwise with the direct
    /// Method 4 decode for every code.
    LutAgreement,
}

impl Law {
    /// All laws, in report order.
    pub fn all() -> &'static [Law] {
        &[
            Law::RoundTrip,
            Law::Idempotence,
            Law::Monotonicity,
            Law::SignSymmetry,
            Law::RangeContainment,
            Law::MetaFlipRange,
            Law::MetaFlipFinite,
            Law::FastSlowAgreement,
            Law::TensorScalarAgreement,
            Law::LutAgreement,
        ]
    }

    /// Stable kebab-case identifier.
    pub fn name(&self) -> &'static str {
        match self {
            Law::RoundTrip => "round-trip",
            Law::Idempotence => "idempotence",
            Law::Monotonicity => "monotonicity",
            Law::SignSymmetry => "sign-symmetry",
            Law::RangeContainment => "range-containment",
            Law::MetaFlipRange => "meta-flip-range",
            Law::MetaFlipFinite => "meta-flip-finite",
            Law::FastSlowAgreement => "fast-slow-agreement",
            Law::TensorScalarAgreement => "tensor-scalar-agreement",
            Law::LutAgreement => "lut-agreement",
        }
    }

    /// One-line statement of the law.
    pub fn describe(&self) -> &'static str {
        match self {
            Law::RoundTrip => "decode→encode→decode is a bitwise fixpoint for every code",
            Law::Idempotence => "quantising an already-quantised tensor is the identity",
            Law::Monotonicity => "the context-fixed quantiser is monotone non-decreasing",
            Law::SignSymmetry => "q(−x) == −q(x) inside the symmetric range",
            Law::RangeContainment => {
                "every reachable value stays inside dynamic_range() or is an Inf/NaN code"
            }
            Law::MetaFlipRange => {
                "values re-interpreted under a flipped metadata word stay in the flipped range"
            }
            Law::MetaFlipFinite => "no metadata flip produces Inf/NaN (BFP/AFP)",
            Law::FastSlowAgreement => "fast f32 quantise path matches the f64 reference bitwise",
            Law::TensorScalarAgreement => {
                "Method 1 matches Method 3∘4 element-wise under the same metadata"
            }
            Law::LutAgreement => "the dequantise LUT matches the direct Method 4 decode per code",
        }
    }
}

impl fmt::Display for Law {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single law violation found by the oracle or a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The violated law.
    pub law: Law,
    /// `FormatSpec` string of the offending format instance.
    pub spec: String,
    /// Which metadata context the check ran under (e.g. `"scale=0.02"`,
    /// `"bias=-3"`, `"none"`).
    pub context: String,
    /// Human-readable description of the counterexample.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} ({}): {}", self.law, self.spec, self.context, self.detail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn law_names_are_stable_and_unique() {
        let names: Vec<&str> = Law::all().iter().map(|l| l.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate law names");
        assert!(names.contains(&"round-trip"));
        assert!(names.contains(&"meta-flip-finite"));
    }

    #[test]
    fn violation_display_mentions_law_and_spec() {
        let v = Violation {
            law: Law::RoundTrip,
            spec: "int:8".into(),
            context: "scale=1".into(),
            detail: "code 0x80 decodes outside the grid".into(),
        };
        let s = v.to_string();
        assert!(s.contains("round-trip") && s.contains("int:8"), "{s}");
    }
}
