//! The exhaustive code-space oracle.
//!
//! For every format instance whose data width is ≤ 16 bits the oracle
//! enumerates *all* bit patterns under each metadata context and checks the
//! laws of [`crate::laws`]. Because a single value-bit flip maps one
//! enumerated code to another enumerated code, exhaustive enumeration
//! subsumes the "every value reachable by a single value-bit flip" clause
//! of `range-containment` — no separate flip loop is needed. Metadata-bit
//! flips do need their own loop (`meta-flip-range` / `meta-flip-finite`)
//! because flipped registers leave the enumerated value space.
//!
//! Formats wider than 16 bits (FP32, TF32, FxP(1,15,16)) get the same laws
//! on a logarithmic grid instead of the full code space; the proptest
//! sweeps in `tests/` add randomised coverage.

use crate::laws::{Law, Violation};
use formats::{
    f32_saturate, mul_pow2, FloatingPoint, FormatSpec, GoldenFloat, Metadata, MxElem, NumberFormat,
};
use tensor::Tensor;

/// Per-family law bindings and semantics.
#[derive(Debug, Clone, Copy)]
struct FamilyFlags {
    /// `−0.0` is a distinct code: sign symmetry and round-trips are bitwise.
    signed_zero: bool,
    /// The code space contains explicit ±Inf codes.
    allows_inf: bool,
    /// The code space contains explicit NaN codes.
    allows_nan: bool,
    /// `meta-flip-finite` binds (BFP/AFP; INT's FP32 scale register is
    /// exempt — scale flips to Inf/NaN are faithful hardware behaviour).
    meta_flip_finite: bool,
}

fn flags_for(spec: &FormatSpec) -> FamilyFlags {
    match spec {
        FormatSpec::Fp { .. } => FamilyFlags {
            signed_zero: true,
            allows_inf: true,
            allows_nan: true,
            meta_flip_finite: false,
        },
        FormatSpec::Afp { .. } => FamilyFlags {
            signed_zero: true,
            allows_inf: true,
            allows_nan: true,
            meta_flip_finite: true,
        },
        FormatSpec::Bfp { .. } => FamilyFlags {
            signed_zero: true,
            allows_inf: false,
            allows_nan: false,
            meta_flip_finite: true,
        },
        FormatSpec::Fxp { .. } | FormatSpec::Int { .. } => FamilyFlags {
            signed_zero: false,
            allows_inf: false,
            allows_nan: false,
            meta_flip_finite: false,
        },
        FormatSpec::Posit { .. } => FamilyFlags {
            signed_zero: false,
            allows_inf: false,
            allows_nan: true, // NaR
            meta_flip_finite: false,
        },
        // MX element families differ: FP4/FP6 are all-finite, FP8 e4m3
        // reclaims all specials but one NaN, FP8 e5m2 keeps IEEE specials.
        FormatSpec::Mx { elem, .. } => FamilyFlags {
            signed_zero: true,
            allows_inf: matches!(elem, MxElem::Fp8E5m2),
            allows_nan: matches!(elem, MxElem::Fp8E4m3 | MxElem::Fp8E5m2),
            meta_flip_finite: true,
        },
        // P3109 profiles: one NaN at the sign|zeros code, no Inf, no −0.
        FormatSpec::P3109 { .. } => FamilyFlags {
            signed_zero: false,
            allows_inf: false,
            allows_nan: true,
            meta_flip_finite: false,
        },
        // GoldenFloat is an aliased FloatingPoint; same IEEE-style flags.
        FormatSpec::Gf { .. } => FamilyFlags {
            signed_zero: true,
            allows_inf: true,
            allows_nan: true,
            meta_flip_finite: false,
        },
    }
}

/// A metadata context the oracle checks under: the register state derived
/// from quantising one probe tensor.
pub struct Context {
    /// Human-readable label for reports (e.g. `"scale=0.059"`, `"bias=-5"`).
    pub label: String,
    /// The probe tensor that produced the context.
    pub probe: Tensor,
    /// Its quantisation (values + metadata).
    pub quantized: formats::Quantized,
}

/// The deterministic probe tensors: mixed magnitudes, both signs, both
/// zeros. All values are exact in every binary format's value grid scale,
/// and the second probe shifts everything down 9 binades to exercise
/// negative AFP biases and low BFP exponent codes.
pub fn probe_tensors() -> Vec<Tensor> {
    let base: Vec<f32> = vec![
        7.5, -0.5, 0.25, -0.0, 0.0, 3.75, -2.5, 0.125, 1.0, -0.875, 0.0625, -6.0, 1.5, -0.03125,
        5.25, -4.0, 2.0, -1.25, 0.75, -7.0, 0.375, -0.1875, 6.5, -3.0, 0.09375, -5.5, 4.5, -0.25,
        1.75, -2.25, 3.25, -0.625,
    ];
    let small: Vec<f32> = base.iter().map(|x| x / 512.0).collect();
    vec![Tensor::from_vec(base, [32]), Tensor::from_vec(small, [32])]
}

fn context_label(meta: &Metadata) -> String {
    match meta {
        Metadata::None => "none".to_string(),
        Metadata::Scale(s) => format!("scale={s}"),
        Metadata::SharedExponents { codes, .. } => format!("codes={codes:?}"),
        Metadata::ExpBias { bias, .. } => format!("bias={bias}"),
    }
}

/// Builds the oracle's metadata contexts for a format: one per probe
/// tensor for metadata-bearing families, a single `Metadata::None` context
/// otherwise (the probes still drive idempotence / tensor-scalar checks).
pub fn contexts_for(format: &dyn NumberFormat) -> Vec<Context> {
    probe_tensors()
        .into_iter()
        .map(|probe| {
            let quantized = format.real_to_format_tensor(&probe);
            Context { label: context_label(&quantized.meta), probe, quantized }
        })
        .collect()
}

/// The containment bounds `(max_abs, min_abs)` of `dynamic_range()` scaled
/// into the value domain of a given metadata context. Returns `None` when
/// the context itself is out of the checkable domain (non-finite INT
/// scale — a documented intentional deviation).
fn scaled_bounds(
    spec: &FormatSpec,
    format: &dyn NumberFormat,
    meta: &Metadata,
) -> Option<(f64, f64)> {
    let dr = format.dynamic_range();
    match (spec, meta) {
        (FormatSpec::Int { .. }, Metadata::Scale(s)) => {
            if !s.is_finite() {
                return None;
            }
            let s = (*s as f64).abs();
            Some((dr.max_abs * s, dr.min_abs * s))
        }
        (FormatSpec::Afp { .. }, Metadata::ExpBias { bias, .. }) => {
            Some((mul_pow2(dr.max_abs, *bias as i64), mul_pow2(dr.min_abs, *bias as i64)))
        }
        // BFP's dynamic_range() is the max over all shared-exponent codes,
        // so it bounds every context (and every flipped register).
        _ => Some((dr.max_abs, dr.min_abs)),
    }
}

/// Conformance result for one format instance.
pub struct FormatReport {
    /// The checked spec.
    pub spec: FormatSpec,
    /// `NumberFormat::name()` of the instance.
    pub name: String,
    /// Data bits per value.
    pub bit_width: u32,
    /// Whether the full code space was enumerated (width ≤ 16).
    pub exhaustive: bool,
    /// Codes enumerated across all contexts.
    pub codes_checked: u64,
    /// Individual law checks executed.
    pub checks: u64,
    /// Violations found (empty = conformant).
    pub violations: Vec<Violation>,
}

/// Width above which exhaustive code enumeration is skipped.
pub const EXHAUSTIVE_WIDTH_LIMIT: u32 = 16;

/// Runs every applicable law against one format instance.
pub fn check_format(spec: &FormatSpec) -> FormatReport {
    let format = spec.build();
    let flags = flags_for(spec);
    let bit_width = format.bit_width();
    let exhaustive = bit_width <= EXHAUSTIVE_WIDTH_LIMIT;
    let mut report = FormatReport {
        spec: spec.clone(),
        name: format.name(),
        bit_width,
        exhaustive,
        codes_checked: 0,
        checks: 0,
        violations: Vec::new(),
    };

    for ctx in contexts_for(format.as_ref()) {
        let meta = ctx.quantized.meta.clone();
        // The context-fixed quantiser: Method 3 ∘ Method 4.
        let quantize = |x: f32| -> f32 {
            format.format_to_real(&format.real_to_format(x, &meta, 0), &meta, 0)
        };

        let decoded = if exhaustive {
            check_code_space(spec, format.as_ref(), &flags, &ctx, &mut report)
        } else {
            grid_for_wide_format(format.as_ref())
        };

        check_monotonicity(&quantize, &decoded, spec, &ctx, &mut report);
        check_sign_symmetry(&quantize, &decoded, spec, &flags, &ctx, &mut report);
        check_idempotence(spec, format.as_ref(), &ctx, &mut report);
        check_tensor_scalar(format.as_ref(), spec, &ctx, &mut report);
        check_meta_flips(spec, format.as_ref(), &flags, &ctx, &mut report);
        if let FormatSpec::Fp { exp, man, denormals } = *spec {
            let fp = FloatingPoint::new(exp, man).with_denormals(denormals);
            check_fast_slow(&fp, &decoded, spec, &ctx, &mut report);
        }
        // GoldenFloat delegates to the equivalent FloatingPoint, so it gets
        // the same bit-twiddle-vs-reference cross-check.
        if let FormatSpec::Gf { n } = *spec {
            let (e, m) = GoldenFloat::phi_split(n);
            let fp = FloatingPoint::new(e, m);
            check_fast_slow(&fp, &decoded, spec, &ctx, &mut report);
        }
    }
    check_lut(format.as_ref(), spec, &mut report);
    report
}

/// Law `lut-agreement`: for narrow metadata-free formats, the cached
/// dequantise LUT (the error injector's decode fast path) must agree
/// bitwise with the direct Method 4 decode for **every** code. Formats the
/// LUT declines (metadata-bearing or > 16-bit) are vacuously conformant.
fn check_lut(format: &dyn NumberFormat, spec: &FormatSpec, report: &mut FormatReport) {
    let Some(lut) = formats::lut::cached(format) else {
        return;
    };
    let w = lut.width();
    for code in 0..(1u64 << w) {
        report.checks += 1;
        let direct =
            format.format_to_real(&formats::Bitstring::from_u64(code, w), &Metadata::None, 0);
        let fast = lut.decode(code);
        let agrees = direct.to_bits() == fast.to_bits() || (direct.is_nan() && fast.is_nan());
        if !agrees {
            report.violations.push(Violation {
                law: Law::LutAgreement,
                spec: spec.to_string(),
                context: "none".to_string(),
                detail: format!("code {code:#x}: LUT decodes {fast}, Method 4 decodes {direct}"),
            });
        }
    }
}

/// Enumerates the full code space under one context: `round-trip` and
/// `range-containment` per code. Returns the sorted distinct finite decoded
/// values (the grid for the monotonicity / symmetry / fast-slow checks).
fn check_code_space(
    spec: &FormatSpec,
    format: &dyn NumberFormat,
    flags: &FamilyFlags,
    ctx: &Context,
    report: &mut FormatReport,
) -> Vec<f32> {
    let w = format.bit_width() as usize;
    let meta = &ctx.quantized.meta;
    let bounds = scaled_bounds(spec, format, meta);
    let mut values: Vec<f32> = Vec::with_capacity(1 << w);
    for code in 0..(1u64 << w) {
        report.codes_checked += 1;
        let bits = formats::Bitstring::from_u64(code, w);
        let v1 = format.format_to_real(&bits, meta, 0);

        // Law `round-trip`.
        report.checks += 1;
        let bits2 = format.real_to_format(v1, meta, 0);
        let v2 = format.format_to_real(&bits2, meta, 0);
        let fixpoint = v1.to_bits() == v2.to_bits() || (v1.is_nan() && v2.is_nan());
        if !fixpoint {
            report.violations.push(Violation {
                law: Law::RoundTrip,
                spec: spec.to_string(),
                context: ctx.label.clone(),
                detail: format!("code {code:#x}: decode {v1} re-decodes as {v2}"),
            });
        }

        // Law `range-containment`. A single value-bit flip maps this code
        // to another enumerated code, so flips are covered by this loop.
        report.checks += 1;
        if v1.is_nan() {
            if !flags.allows_nan {
                report.violations.push(Violation {
                    law: Law::RangeContainment,
                    spec: spec.to_string(),
                    context: ctx.label.clone(),
                    detail: format!("code {code:#x} decodes to NaN but the format has no NaN code"),
                });
            }
        } else if v1.is_infinite() {
            if !flags.allows_inf {
                report.violations.push(Violation {
                    law: Law::RangeContainment,
                    spec: spec.to_string(),
                    context: ctx.label.clone(),
                    detail: format!(
                        "code {code:#x} decodes to {v1} but the format has no Inf code"
                    ),
                });
            }
        } else if let Some((max_abs, min_abs)) = bounds {
            let a = (v1 as f64).abs();
            // 1-ulp slack: decoded values live on the f32 fabric, the
            // declared bounds in f64.
            if a > max_abs * (1.0 + 1e-6) {
                report.violations.push(Violation {
                    law: Law::RangeContainment,
                    spec: spec.to_string(),
                    context: ctx.label.clone(),
                    detail: format!("code {code:#x} decodes to {v1}, beyond max_abs {max_abs}"),
                });
            }
            if a != 0.0 && a < min_abs * (1.0 - 1e-6) {
                report.violations.push(Violation {
                    law: Law::RangeContainment,
                    spec: spec.to_string(),
                    context: ctx.label.clone(),
                    detail: format!("code {code:#x} decodes to {v1}, below min_abs {min_abs}"),
                });
            }
        }

        if v1.is_finite() {
            values.push(v1);
        }
    }
    values.sort_by(f32::total_cmp);
    values.dedup_by(|a, b| a.to_bits() == b.to_bits());
    values
}

/// Check grid for >16-bit formats: every power of two in the format's
/// range × {1, 1.25, 1.5, 1.75}, both signs, plus zeros.
fn grid_for_wide_format(format: &dyn NumberFormat) -> Vec<f32> {
    let dr = format.dynamic_range();
    let mut values = vec![-0.0f32, 0.0];
    // Clamp to the f32 fabric's binade range: decoded values are f32, so
    // grid points beyond it only saturate/flush (and an extreme format's
    // f64 bounds — e.g. GF32's 2^−1042 min denormal — would explode the
    // exponent loop).
    let lo = (dr.min_abs.max(f64::MIN_POSITIVE).log2().floor() as i64 - 1).max(-150);
    let hi = (dr.max_abs.min(f64::MAX).log2().ceil() as i64 + 1).min(129);
    for e in lo..=hi {
        for frac in [1.0, 1.25, 1.5, 1.75] {
            let v = f32_saturate(mul_pow2(frac, e));
            if v.is_finite() && v != 0.0 {
                values.push(v);
                values.push(-v);
            }
        }
    }
    values.sort_by(f32::total_cmp);
    values.dedup_by(|a, b| a.to_bits() == b.to_bits());
    values
}

/// Law `monotonicity`: the context-fixed quantiser is non-decreasing over
/// the representable values and their midpoints.
fn check_monotonicity(
    quantize: &dyn Fn(f32) -> f32,
    decoded: &[f32],
    spec: &FormatSpec,
    ctx: &Context,
    report: &mut FormatReport,
) {
    let mut prev: Option<(f32, f32)> = None;
    for xs in decoded.windows(2) {
        let mid = (xs[0] as f64 + xs[1] as f64) * 0.5;
        for x in [xs[0], mid as f32] {
            let q = quantize(x);
            if q.is_nan() {
                continue;
            }
            report.checks += 1;
            if let Some((px, pq)) = prev {
                if q < pq {
                    report.violations.push(Violation {
                        law: Law::Monotonicity,
                        spec: spec.to_string(),
                        context: ctx.label.clone(),
                        detail: format!("q({px}) = {pq} but q({x}) = {q} decreases"),
                    });
                }
            }
            prev = Some((x, q));
        }
    }
}

/// Law `sign-symmetry`: `q(−x) == −q(x)` inside the symmetric part of the
/// range (two's-complement formats saturate asymmetrically at the very
/// bottom code, so the bound is the smaller of the two saturation points).
fn check_sign_symmetry(
    quantize: &dyn Fn(f32) -> f32,
    decoded: &[f32],
    spec: &FormatSpec,
    flags: &FamilyFlags,
    ctx: &Context,
    report: &mut FormatReport,
) {
    let sat_pos = quantize(f32::MAX);
    let sat_neg = quantize(-f32::MAX);
    if sat_pos.is_nan() || sat_neg.is_nan() {
        return;
    }
    let sym_max = sat_pos.abs().min(sat_neg.abs());
    for &x in decoded {
        if x <= 0.0 || x > sym_max {
            continue;
        }
        report.checks += 1;
        let qp = quantize(x);
        let qn = quantize(-x);
        let ok = if flags.signed_zero { qn.to_bits() == (-qp).to_bits() } else { qn == -qp };
        if !ok {
            report.violations.push(Violation {
                law: Law::SignSymmetry,
                spec: spec.to_string(),
                context: ctx.label.clone(),
                detail: format!("q({x}) = {qp} but q({}) = {qn}", -x),
            });
        }
    }
    // Signed zero itself: q(−0.0) must keep the sign for signed-zero
    // formats and must quantise to a zero either way.
    report.checks += 1;
    let qz = quantize(-0.0);
    let zero_ok = if flags.signed_zero { qz == 0.0 && qz.is_sign_negative() } else { qz == 0.0 };
    if !zero_ok {
        report.violations.push(Violation {
            law: Law::SignSymmetry,
            spec: spec.to_string(),
            context: ctx.label.clone(),
            detail: format!("q(−0.0) = {qz} (sign bit {})", qz.is_sign_negative()),
        });
    }
}

/// Law `idempotence`: requantising `rtf(t).values` is the identity. INT
/// deviates at the value level (the re-derived scale can differ by 1 ulp),
/// but its codes must be stable and values within 1e-5 relative.
fn check_idempotence(
    spec: &FormatSpec,
    format: &dyn NumberFormat,
    ctx: &Context,
    report: &mut FormatReport,
) {
    let q1 = &ctx.quantized;
    let q2 = format.real_to_format_tensor(&q1.values);
    report.checks += 1;
    if let FormatSpec::Int { .. } = spec {
        for (i, (&a, &b)) in q1.values.as_slice().iter().zip(q2.values.as_slice()).enumerate() {
            let code_a = format.real_to_format(a, &q1.meta, i);
            let code_b = format.real_to_format(b, &q2.meta, i);
            let drift_ok = (a - b).abs() as f64 <= (a.abs() as f64) * 1e-5 + f64::MIN_POSITIVE;
            if code_a.to_u64() != code_b.to_u64() || !drift_ok {
                report.violations.push(Violation {
                    law: Law::Idempotence,
                    spec: spec.to_string(),
                    context: ctx.label.clone(),
                    detail: format!("element {i}: {a} requantises to {b} off the code grid"),
                });
            }
        }
        return;
    }
    let same_values = q1
        .values
        .as_slice()
        .iter()
        .zip(q2.values.as_slice())
        .all(|(a, b)| a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan()));
    if !same_values || q1.meta != q2.meta {
        report.violations.push(Violation {
            law: Law::Idempotence,
            spec: spec.to_string(),
            context: ctx.label.clone(),
            detail: if same_values {
                format!("metadata drifts: {:?} → {:?}", q1.meta, q2.meta)
            } else {
                "requantised values differ bitwise".to_string()
            },
        });
    }
}

/// Law `tensor-scalar-agreement`: Method 1 equals Method 3 ∘ Method 4 per
/// element under the same metadata, for finite inputs.
fn check_tensor_scalar(
    format: &dyn NumberFormat,
    spec: &FormatSpec,
    ctx: &Context,
    report: &mut FormatReport,
) {
    let q = &ctx.quantized;
    for (i, &x) in ctx.probe.as_slice().iter().enumerate() {
        if !x.is_finite() {
            continue;
        }
        report.checks += 1;
        let scalar = format.format_to_real(&format.real_to_format(x, &q.meta, i), &q.meta, i);
        let tensor = q.values.as_slice()[i];
        if scalar.to_bits() != tensor.to_bits() && !(scalar.is_nan() && tensor.is_nan()) {
            report.violations.push(Violation {
                law: Law::TensorScalarAgreement,
                spec: spec.to_string(),
                context: ctx.label.clone(),
                detail: format!("element {i} ({x}): tensor {tensor} vs scalar {scalar}"),
            });
        }
    }
}

/// Laws `meta-flip-range` / `meta-flip-finite`: every single-bit flip of
/// every metadata word, re-applied to the stored values.
fn check_meta_flips(
    spec: &FormatSpec,
    format: &dyn NumberFormat,
    flags: &FamilyFlags,
    ctx: &Context,
    report: &mut FormatReport,
) {
    if !format.supports_metadata_injection() {
        return;
    }
    let q = &ctx.quantized;
    for word in 0..q.meta.word_count() {
        let bits = q.meta.word_bits(word).expect("word in range");
        for bit in 0..bits.len() {
            let corrupted = q.meta.with_word_bits(word, &bits.with_flip(bit));
            let reapplied = format.apply_metadata(&q.values, &q.meta, &corrupted);
            let bounds = scaled_bounds(spec, format, &corrupted);
            for (i, &v) in reapplied.as_slice().iter().enumerate() {
                report.checks += 1;
                if flags.meta_flip_finite && !v.is_finite() {
                    report.violations.push(Violation {
                        law: Law::MetaFlipFinite,
                        spec: spec.to_string(),
                        context: ctx.label.clone(),
                        detail: format!("word {word} bit {bit}: element {i} became {v}"),
                    });
                    continue;
                }
                if let Some((max_abs, _)) = bounds {
                    if v.is_finite() && (v as f64).abs() > max_abs * (1.0 + 1e-6) {
                        report.violations.push(Violation {
                            law: Law::MetaFlipRange,
                            spec: spec.to_string(),
                            context: ctx.label.clone(),
                            detail: format!(
                                "word {word} bit {bit}: element {i} = {v} beyond flipped max {max_abs}"
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// Law `fast-slow-agreement` (FP only): the bit-twiddle f32 path matches
/// the exact f64 reference on representable values, midpoints, and special
/// values.
fn check_fast_slow(
    fp: &FloatingPoint,
    decoded: &[f32],
    spec: &FormatSpec,
    ctx: &Context,
    report: &mut FormatReport,
) {
    let probe_one = |x: f32, report: &mut FormatReport| {
        report.checks += 1;
        let fast = fp.quantize_scalar(x);
        let slow = fp.quantize_reference(x);
        if fast.to_bits() != slow.to_bits() && !(fast.is_nan() && slow.is_nan()) {
            report.violations.push(Violation {
                law: Law::FastSlowAgreement,
                spec: spec.to_string(),
                context: ctx.label.clone(),
                detail: format!("x = {x} ({:#x}): fast {fast} vs reference {slow}", x.to_bits()),
            });
        }
    };
    for xs in decoded.windows(2) {
        probe_one(xs[0], report);
        probe_one(((xs[0] as f64 + xs[1] as f64) * 0.5) as f32, report);
    }
    for x in [
        0.0,
        -0.0,
        f32::MIN_POSITIVE,
        -f32::MIN_POSITIVE,
        f32::MAX,
        -f32::MAX,
        f32::INFINITY,
        f32::NEG_INFINITY,
        f32::NAN,
        1e-45,
        -1e-45,
    ] {
        probe_one(x, report);
    }
}

/// Convenience: are BFP/AFP special-cased correctly? Used by the CLI to
/// label the per-format summary.
pub fn family_name(spec: &FormatSpec) -> &'static str {
    match spec {
        FormatSpec::Fp { .. } => "fp",
        FormatSpec::Fxp { .. } => "fxp",
        FormatSpec::Int { .. } => "int",
        FormatSpec::Bfp { .. } => "bfp",
        FormatSpec::Afp { .. } => "afp",
        FormatSpec::Posit { .. } => "posit",
        FormatSpec::Mx { .. } => "mx",
        FormatSpec::P3109 { .. } => "p3109",
        FormatSpec::Gf { .. } => "gf",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_conformant(s: &str) {
        let spec: FormatSpec = s.parse().unwrap();
        let report = check_format(&spec);
        assert!(
            report.violations.is_empty(),
            "{s}: {} violations, first: {}",
            report.violations.len(),
            report.violations[0]
        );
        assert!(report.checks > 0);
    }

    #[test]
    fn oracle_passes_one_format_per_family() {
        for s in [
            "fp:e4m3",
            "fxp:1:3:4",
            "int:8",
            "bfp:e5m5:b16",
            "afp:e4m3",
            "posit:8:0",
            "mx:fp8e4m3:b32",
            "p3109:e4m3",
            "gf:8",
        ] {
            assert_conformant(s);
        }
    }

    #[test]
    fn oracle_passes_every_mx_element_type() {
        for s in [
            "mx:fp4e2m1:b32",
            "mx:fp6e2m3:b32",
            "mx:fp6e3m2:b32",
            "mx:fp8e4m3:b32",
            "mx:fp8e5m2:b32",
        ] {
            assert_conformant(s);
        }
    }

    #[test]
    fn oracle_is_exhaustive_for_narrow_formats() {
        let spec: FormatSpec = "fp:e4m3".parse().unwrap();
        let report = check_format(&spec);
        assert!(report.exhaustive);
        // 256 codes × 2 contexts.
        assert_eq!(report.codes_checked, 512);
    }

    #[test]
    fn oracle_skips_enumeration_beyond_16_bits() {
        let spec: FormatSpec = "fp32".parse().unwrap();
        let report = check_format(&spec);
        assert!(!report.exhaustive);
        assert_eq!(report.codes_checked, 0);
        assert!(report.checks > 0, "grid-based laws must still run");
        assert!(report.violations.is_empty(), "first: {}", report.violations[0]);
    }
}
