//! Integration conformance suite: the exhaustive oracle over the whole
//! standard zoo, golden-vector diffs, and the proptest differential sweeps
//! (fast vs reference quantiser, tensor vs scalar path) that extend
//! coverage to the >16-bit formats the oracle cannot enumerate.

use conformance::oracle::check_format;
use conformance::{standard_zoo, vectors};
use formats::{FloatingPoint, FormatSpec, GoldenFloat};
use proptest::prelude::*;
use tensor::Tensor;

/// The tentpole acceptance check: every format in the standard zoo passes
/// every applicable law with zero violations, exhaustively for data widths
/// ≤ 16 bits.
#[test]
fn standard_zoo_has_zero_violations() {
    let mut exhaustive = 0;
    for spec in standard_zoo() {
        let report = check_format(&spec);
        assert!(
            report.violations.is_empty(),
            "{spec}: {} violation(s), first: {}",
            report.violations.len(),
            report.violations[0]
        );
        if report.exhaustive {
            exhaustive += 1;
            assert!(report.codes_checked >= 1 << report.bit_width, "{spec}");
        }
    }
    assert!(exhaustive >= 25, "most zoo formats must be enumerable");
    assert!(standard_zoo().len() >= 30, "the zoo must span the microscaling-era families");
}

/// Golden vectors stay bit-identical to the checked-in files.
#[test]
fn golden_vectors_are_stable() {
    for spec in vectors::golden_specs() {
        if let Err(e) = vectors::diff(&spec) {
            panic!("{e}");
        }
    }
}

fn zoo_fp_instances() -> Vec<(FormatSpec, FloatingPoint)> {
    standard_zoo()
        .into_iter()
        .filter_map(|spec| match spec {
            FormatSpec::Fp { exp, man, denormals } => {
                Some((spec, FloatingPoint::new(exp, man).with_denormals(denormals)))
            }
            // GoldenFloat is arithmetically the φ-split FloatingPoint, so it
            // joins the fast-vs-reference differential (incl. 32-bit GF32,
            // which the exhaustive oracle skips).
            FormatSpec::Gf { n } => {
                let (e, m) = GoldenFloat::phi_split(n);
                Some((spec, FloatingPoint::new(e, m)))
            }
            _ => None,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Law `fast-slow-agreement`, differentially over arbitrary f32 bit
    /// patterns (every exponent, denormals, ±Inf, NaNs): the bit-twiddle
    /// `quantize_f32` path must match the f64 reference bitwise for every
    /// FP parameterisation in the zoo — including FP32/TF32, which the
    /// exhaustive oracle skips.
    #[test]
    fn prop_fast_slow_agreement(pattern in 0u64..(1u64 << 32)) {
        let x = f32::from_bits(pattern as u32);
        for (spec, fp) in zoo_fp_instances() {
            let fast = fp.quantize_scalar(x);
            let slow = fp.quantize_reference(x);
            prop_assert!(
                fast.to_bits() == slow.to_bits() || (fast.is_nan() && slow.is_nan()),
                "{spec}: x = {x:e} ({pattern:#010x}): fast {fast:e} vs reference {slow:e}"
            );
        }
    }

    /// Law `tensor-scalar-agreement`, differentially over random finite
    /// tensors: Method 1 must agree element-wise (bitwise) with the
    /// Method 3 ∘ Method 4 composition under the metadata Method 1
    /// derived — for every format in the zoo.
    #[test]
    fn prop_tensor_scalar_agreement(values in prop::collection::vec(-3e4f32..3e4, 1..24)) {
        let t = Tensor::from_vec(values.clone(), [values.len()]);
        for spec in standard_zoo() {
            let f = spec.build();
            let q = f.real_to_format_tensor(&t);
            for (i, &x) in values.iter().enumerate() {
                let scalar =
                    f.format_to_real(&f.real_to_format(x, &q.meta, i), &q.meta, i);
                let tensor = q.values.as_slice()[i];
                prop_assert!(
                    scalar.to_bits() == tensor.to_bits()
                        || (scalar.is_nan() && tensor.is_nan()),
                    "{spec}: element {i} ({x}): tensor {tensor} vs scalar {scalar}"
                );
            }
        }
    }

    /// Wide-format spot enumeration: for >16-bit formats the quantiser must
    /// still be a projection (idempotent per element) on random inputs.
    #[test]
    fn prop_wide_formats_project(values in prop::collection::vec(-1e30f32..1e30, 1..16)) {
        let t = Tensor::from_vec(values.clone(), [values.len()]);
        for spec in standard_zoo() {
            if spec.build().bit_width() <= 16 {
                continue;
            }
            let f = spec.build();
            let q1 = f.real_to_format_tensor(&t);
            let q2 = f.real_to_format_tensor(&q1.values);
            for (a, b) in q1.values.as_slice().iter().zip(q2.values.as_slice()) {
                prop_assert!(
                    a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan()),
                    "{spec}: {a} requantises to {b}"
                );
            }
        }
    }
}
