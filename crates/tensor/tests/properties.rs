//! Property-based tests of the tensor substrate: algebraic identities of
//! the kernels and gradient checks of the autograd tape on random inputs.

use proptest::prelude::*;
use tensor::{linalg, ops, Conv2dSpec, Tape, Tensor};

fn tensor_strategy(max_len: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-10.0f32..10.0, 1..max_len).prop_map(|v| {
        let n = v.len();
        Tensor::from_vec(v, [n])
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn add_commutes(a in tensor_strategy(64)) {
        let b = a.map(|x| x * 0.5 - 1.0);
        prop_assert_eq!(ops::add(&a, &b), ops::add(&b, &a));
    }

    #[test]
    fn add_zero_is_identity(a in tensor_strategy(64)) {
        let z = Tensor::zeros(a.shape().clone());
        prop_assert_eq!(ops::add(&a, &z), a);
    }

    #[test]
    fn mul_distributes_over_add(a in tensor_strategy(32)) {
        let b = a.map(|x| x + 1.0);
        let c = a.map(|x| x - 2.0);
        let lhs = ops::mul(&a, &ops::add(&b, &c));
        let rhs = ops::add(&ops::mul(&a, &b), &ops::mul(&a, &c));
        prop_assert!(lhs.allclose(&rhs, 1e-3), "distributivity failed");
    }

    #[test]
    fn relu_is_idempotent_and_nonnegative(a in tensor_strategy(64)) {
        let r = ops::relu(&a);
        prop_assert_eq!(ops::relu(&r), r.clone());
        prop_assert!(r.min_all() >= 0.0);
    }

    #[test]
    fn softmax_rows_sum_to_one(rows in 1usize..5, cols in 1usize..8, seed in 0u64..100) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::randn([rows, cols], &mut rng);
        let s = ops::softmax_lastdim(&x);
        for row in s.as_slice().chunks(cols) {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5, "row sum {sum}");
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn transpose_is_involution(rows in 1usize..6, cols in 1usize..6, seed in 0u64..100) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::randn([rows, cols], &mut rng);
        prop_assert_eq!(ops::transpose2(&ops::transpose2(&x)), x);
    }

    #[test]
    fn matmul_identity_left(n in 1usize..8, seed in 0u64..100) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::randn([n, n], &mut rng);
        let mut eye = Tensor::zeros([n, n]);
        for i in 0..n {
            eye.set(&[i, i], 1.0);
        }
        prop_assert!(linalg::matmul(&eye, &x).allclose(&x, 1e-5));
    }

    #[test]
    fn matmul_transpose_identity(m in 1usize..5, k in 1usize..5, n in 1usize..5, seed in 0u64..50) {
        // (A·B)ᵀ = Bᵀ·Aᵀ
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn([m, k], &mut rng);
        let b = Tensor::randn([k, n], &mut rng);
        let lhs = ops::transpose2(&linalg::matmul(&a, &b));
        let rhs = linalg::matmul(&ops::transpose2(&b), &ops::transpose2(&a));
        prop_assert!(lhs.allclose(&rhs, 1e-4));
    }

    #[test]
    fn conv_linearity(seed in 0u64..50) {
        // conv(x1 + x2, w) = conv(x1, w) + conv(x2, w)
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = Conv2dSpec::new(3, 1, 1);
        let x1 = Tensor::randn([1, 2, 5, 5], &mut rng);
        let x2 = Tensor::randn([1, 2, 5, 5], &mut rng);
        let w = Tensor::randn([3, 2, 3, 3], &mut rng);
        let lhs = tensor::conv::conv2d(&ops::add(&x1, &x2), &w, None, spec);
        let rhs = ops::add(
            &tensor::conv::conv2d(&x1, &w, None, spec),
            &tensor::conv::conv2d(&x2, &w, None, spec),
        );
        prop_assert!(lhs.allclose(&rhs, 1e-3));
    }

    #[test]
    fn autograd_sum_of_composite_matches_finite_difference(seed in 0u64..40) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let x0 = Tensor::randn([6], &mut rng);
        // f(x) = sum(relu(x)·x + 2x)
        let f = |t: &Tensor| {
            ops::add(&ops::mul(&ops::relu(t), t), &ops::scale(t, 2.0)).sum_all()
        };
        let tape = Tape::new();
        let x = tape.leaf(x0.clone());
        let y = x.relu().mul(&x).add(&x.scale(2.0)).sum_all();
        let grads = y.backward();
        let gx = grads.get(&x).unwrap();
        let eps = 1e-2;
        for i in 0..6 {
            // Skip points near the ReLU kink where the FD estimate is bad.
            if x0.as_slice()[i].abs() < 0.05 {
                continue;
            }
            let mut xp = x0.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x0.clone();
            xm.as_mut_slice()[i] -= eps;
            let fd = (f(&xp) - f(&xm)) / (2.0 * eps);
            prop_assert!(
                (gx.as_slice()[i] - fd).abs() < 0.05,
                "grad[{i}] = {} vs fd {}", gx.as_slice()[i], fd
            );
        }
    }

    #[test]
    fn reduce_to_shape_preserves_total(seed in 0u64..50, rows in 1usize..4, cols in 1usize..4) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let g = Tensor::randn([rows, cols], &mut rng);
        // Reducing to any broadcastable shape preserves the gradient sum.
        let r1 = ops::reduce_to_shape(&g, &tensor::Shape::new(vec![cols]));
        let r2 = ops::reduce_to_shape(&g, &tensor::Shape::new(vec![rows, 1]));
        let r3 = ops::reduce_to_shape(&g, &tensor::Shape::scalar());
        prop_assert!((r1.sum_all() - g.sum_all()).abs() < 1e-3);
        prop_assert!((r2.sum_all() - g.sum_all()).abs() < 1e-3);
        prop_assert!((r3.sum_all() - g.sum_all()).abs() < 1e-3);
    }

    #[test]
    fn maxpool_output_bounded_by_input(seed in 0u64..50) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::randn([1, 2, 6, 6], &mut rng);
        let (y, _) = tensor::conv::maxpool2d(&x, 2, 2);
        prop_assert!(y.max_all() <= x.max_all());
        prop_assert!(y.min_all() >= x.min_all());
    }

    #[test]
    fn concat_narrow_roundtrip(rows in 1usize..4, a_cols in 1usize..4, b_cols in 1usize..4, seed in 0u64..50) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn([rows, a_cols], &mut rng);
        let b = Tensor::randn([rows, b_cols], &mut rng);
        let cat = ops::concat(&[&a, &b], 1);
        prop_assert_eq!(ops::narrow(&cat, 1, 0, a_cols), a);
        prop_assert_eq!(ops::narrow(&cat, 1, a_cols, b_cols), b);
    }
}
