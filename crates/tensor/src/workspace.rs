//! Reusable scratch buffers for the compute kernels.
//!
//! `conv2d` / `conv2d_backward` and the packed GEMM need large transient
//! `Vec<f32>` buffers (im2col columns, packed A/B panels, transposed
//! weights). Allocating them per call dominated small-batch inference, so
//! kernels now borrow from a **thread-local free-list pool**: [`take`]
//! hands out a zero-initialised buffer (recycling the largest retired one
//! that fits), and dropping the returned [`Scratch`] guard retires the
//! buffer back to the pool.
//!
//! Thread-local means no locking on the hot path and no API churn up
//! through autograd/nn — every campaign worker thread simply warms its own
//! pool on the first trial. The pool is bounded ([`MAX_POOLED`] buffers,
//! each ≤ [`MAX_POOLED_LEN`] elements) so pathological shapes cannot pin
//! unbounded memory.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};

/// Buffers kept per thread; beyond this the smallest is dropped.
const MAX_POOLED: usize = 8;
/// Buffers longer than this are freed on retirement instead of pooled.
const MAX_POOLED_LEN: usize = 64 << 20;

thread_local! {
    static POOL: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
}

/// The pool's per-buffer element budget ([`MAX_POOLED_LEN`]) — the anchor
/// batched campaigns use to auto-size how many trial replicas fit in one
/// forward pass without spilling the kernels' scratch buffers out of the
/// pool.
pub const fn pooled_budget_elems() -> usize {
    MAX_POOLED_LEN
}

/// A pooled scratch buffer; derefs to `[f32]` of exactly the requested
/// length and returns its storage to the thread-local pool on drop.
pub struct Scratch {
    buf: Vec<f32>,
}

impl Deref for Scratch {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        &self.buf
    }
}

impl DerefMut for Scratch {
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.buf
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.buf);
        if buf.capacity() == 0 || buf.capacity() > MAX_POOLED_LEN {
            return;
        }
        POOL.with(|p| {
            let mut pool = p.borrow_mut();
            pool.push(buf);
            if pool.len() > MAX_POOLED {
                // Keep the largest buffers: they are the expensive ones.
                let (mut min_i, mut min_cap) = (0, usize::MAX);
                for (i, b) in pool.iter().enumerate() {
                    if b.capacity() < min_cap {
                        min_i = i;
                        min_cap = b.capacity();
                    }
                }
                pool.swap_remove(min_i);
            }
        });
    }
}

/// Borrows a zeroed scratch buffer of `len` elements from the current
/// thread's pool, allocating only when no retired buffer is big enough.
pub fn take(len: usize) -> Scratch {
    let reused = POOL.with(|p| {
        let mut pool = p.borrow_mut();
        // Smallest buffer that fits, to keep big ones for big requests.
        let mut best: Option<(usize, usize)> = None;
        for (i, b) in pool.iter().enumerate() {
            let cap = b.capacity();
            if cap >= len && best.is_none_or(|(_, c)| cap < c) {
                best = Some((i, cap));
            }
        }
        best.map(|(i, _)| pool.swap_remove(i))
    });
    let buf = match reused {
        Some(mut b) => {
            stats::HITS.with(|c| c.set(c.get() + 1));
            b.clear();
            b.resize(len, 0.0);
            b
        }
        None => {
            stats::MISSES.with(|c| c.set(c.get() + 1));
            vec![0.0f32; len]
        }
    };
    Scratch { buf }
}

/// Pool effectiveness counters for the current thread, mainly for tests
/// and the bench bins.
pub mod stats {
    use std::cell::Cell;

    thread_local! {
        pub(super) static HITS: Cell<u64> = const { Cell::new(0) };
        pub(super) static MISSES: Cell<u64> = const { Cell::new(0) };
    }

    /// (`take` calls served from the pool, `take` calls that allocated)
    /// on the current thread since the last [`reset`].
    pub fn snapshot() -> (u64, u64) {
        (HITS.with(Cell::get), MISSES.with(Cell::get))
    }

    /// Zeroes the current thread's counters.
    pub fn reset() {
        HITS.with(|c| c.set(0));
        MISSES.with(|c| c.set(0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_zeroed_buffer_of_exact_len() {
        let mut s = take(100);
        assert_eq!(s.len(), 100);
        assert!(s.iter().all(|&x| x == 0.0));
        s[0] = 7.0;
        drop(s);
        // Reuse must re-zero.
        let s2 = take(50);
        assert_eq!(s2.len(), 50);
        assert!(s2.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn pool_reuses_retired_buffers() {
        stats::reset();
        drop(take(4096));
        drop(take(4096));
        drop(take(1000));
        let (hits, _) = stats::snapshot();
        assert!(hits >= 2, "expected ≥2 pool hits, got {hits}");
    }

    #[test]
    fn pool_stays_bounded() {
        let all: Vec<_> = (0..MAX_POOLED + 5).map(|i| take(64 + i)).collect();
        drop(all);
        POOL.with(|p| assert!(p.borrow().len() <= MAX_POOLED));
    }

    #[test]
    fn zero_len_take_works() {
        let s = take(0);
        assert_eq!(s.len(), 0);
    }
}
