//! Dense linear algebra kernels: 2-D and batched matrix multiplication.
//!
//! The inner kernel is a **packed-panel, register-tiled SGEMM**: `b` is
//! packed once into zero-padded [`kernels::NR`]-column panels, each
//! [`kernels::MR`]-row panel of `a` is packed k-major, and an `MR×NR`
//! register-accumulator micro-kernel walks the full `k` extent in one
//! pass. The micro-kernel is selected per call by runtime CPU-feature
//! dispatch ([`kernels::active`]): hand-written AVX-512 or AVX2
//! intrinsics on x86_64 hosts that support them, the portable scalar loop
//! everywhere else — all bit-identical by construction (see [`kernels`]).
//!
//! Row panels are independent, so they are dispatched to the intra-op
//! worker pool ([`crate::parallel`]); every output element is produced by
//! exactly one task with a fixed accumulation order, which makes results
//! **bit-exact** against [`matmul_naive`] and identical for every thread
//! count, micro-kernel, and fused/unfused pack. See DESIGN.md §10 and
//! §15.
//!
//! The packing step can additionally **fuse an elementwise transform**
//! ([`sgemm_fused`], [`matmul_fused`]): format quantisation is applied
//! while operands stream into panels, eliminating the separate
//! full-tensor quantise memory pass from the campaign hot path.

pub mod kernels;

use std::sync::OnceLock;
use std::time::Instant;

use crate::parallel::{self, SendPtr};
use crate::tensor::Tensor;
use crate::workspace;
use kernels::{Kernel, MR, NR};

/// Below this many flops (`2·m·k·n`) the panel loop stays on one thread.
/// `parallel_for` spawns scoped OS threads per dispatch (no persistent
/// pool), which costs on the order of a millisecond on containerised
/// hosts — comparable to the *entire* GEMM for the small layers of the
/// evaluation models. Threading only pays once the per-dispatch work is
/// tens of milliseconds, i.e. hundreds of megaflops: 512³ and up stay
/// parallel, everything a serial campaign trial touches stays on the
/// worker's own thread (campaign-level `--jobs` parallelism composes on
/// top without oversubscription).
pub(crate) const PAR_FLOP_THRESHOLD: usize = 1 << 27;

/// An elementwise operand transform fused into the pack step (typically a
/// number format's quantise→dequantise round-trip).
pub type Transform<'a> = &'a (dyn Fn(f32) -> f32 + Sync);

/// Benchmark-only escape hatch: when set, [`sgemm`] (and everything built
/// on it: `matmul`, conv2d) routes through the legacy axpy kernel so
/// `campaign_scaling` can measure end-to-end before/after throughput in
/// one process. Never enable outside benchmarks — the legacy kernel keeps
/// the historical zero-skip that drops NaN/Inf propagation.
static LEGACY_KERNEL: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

#[doc(hidden)]
pub fn set_legacy_kernel(on: bool) {
    LEGACY_KERNEL.store(on, std::sync::atomic::Ordering::Relaxed);
}

pub(crate) fn legacy_kernel_enabled() -> bool {
    LEGACY_KERNEL.load(std::sync::atomic::Ordering::Relaxed)
}

struct GemmMetrics {
    pack_ns: &'static trace::Metric,
    fused_quantize_ns: &'static trace::Metric,
    kernel_ns: &'static trace::Metric,
    kernel_kind: &'static trace::Metric,
    flops: &'static trace::Metric,
}

fn gemm_metrics() -> &'static GemmMetrics {
    static METRICS: OnceLock<GemmMetrics> = OnceLock::new();
    METRICS.get_or_init(|| GemmMetrics {
        pack_ns: trace::histogram(trace::names::TENSOR_GEMM_PACK_NS),
        fused_quantize_ns: trace::histogram(trace::names::PACK_FUSED_QUANTIZE_NS),
        kernel_ns: trace::histogram(trace::names::TENSOR_GEMM_KERNEL_NS),
        kernel_kind: trace::histogram(trace::names::GEMM_KERNEL),
        flops: trace::counter(trace::names::TENSOR_GEMM_FLOPS),
    })
}

impl GemmMetrics {
    /// Records one GEMM dispatch: kernel-phase wall time, the dispatched
    /// micro-kernel's ordinal, and the flop count.
    fn record_dispatch(&self, t: Instant, kern: Kernel, flops: usize) {
        self.kernel_ns.record(t.elapsed().as_nanos() as u64);
        self.kernel_kind.record(kern.ordinal());
        self.flops.add(flops as u64);
    }
}

/// Multiplies two matrices: `[m, k] × [k, n] → [m, n]`.
///
/// # Panics
///
/// Panics if operands are not 2-D or the inner dimensions disagree.
///
/// # Examples
///
/// ```
/// use tensor::{Tensor, linalg::matmul};
/// let a = Tensor::from_vec(vec![1., 2., 3., 4.], [2, 2]);
/// let b = Tensor::from_vec(vec![5., 6., 7., 8.], [2, 2]);
/// assert_eq!(matmul(&a, &b).as_slice(), &[19., 22., 43., 50.]);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    matmul_fused(a, b, None, None)
}

/// [`matmul`] with elementwise transforms fused into the pack step:
/// bit-identical to `matmul(&a.map(fa), &b.map(fb))` without ever
/// materialising the transformed operands (a `None` transform is the
/// identity).
///
/// # Panics
///
/// Panics if operands are not 2-D or the inner dimensions disagree.
pub fn matmul_fused(
    a: &Tensor,
    b: &Tensor,
    fa: Option<Transform<'_>>,
    fb: Option<Transform<'_>>,
) -> Tensor {
    assert_eq!(a.ndim(), 2, "matmul lhs must be 2-D, got {:?}", a.shape());
    assert_eq!(b.ndim(), 2, "matmul rhs must be 2-D, got {:?}", b.shape());
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul inner dims: {:?} × {:?}", a.shape(), b.shape());
    let mut out = vec![0.0f32; m * n];
    sgemm_fused(m, k, n, a.as_slice(), b.as_slice(), &mut out, fa, fb);
    Tensor::from_vec(out, [m, n])
}

/// Batched matrix multiply: `[b, m, k] × [b, k, n] → [b, m, n]`.
///
/// Every `(batch, row-panel)` pair is an independent task on the shared
/// worker pool, so large batches of small matrices parallelise as well as
/// one large matrix; per-batch results are bit-identical to per-batch
/// [`matmul`] calls.
///
/// # Panics
///
/// Panics if operands are not 3-D or batch/inner dimensions disagree.
pub fn bmm(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 3, "bmm lhs must be 3-D, got {:?}", a.shape());
    assert_eq!(b.ndim(), 3, "bmm rhs must be 3-D, got {:?}", b.shape());
    let (ba, m, k) = (a.dims()[0], a.dims()[1], a.dims()[2]);
    let (bb, k2, n) = (b.dims()[0], b.dims()[1], b.dims()[2]);
    assert_eq!(ba, bb, "bmm batch dims: {:?} × {:?}", a.shape(), b.shape());
    assert_eq!(k, k2, "bmm inner dims: {:?} × {:?}", a.shape(), b.shape());
    let mut out = vec![0.0f32; ba * m * n];
    if ba == 0 || m == 0 || n == 0 {
        return Tensor::from_vec(out, [ba, m, n]);
    }

    let kern = kernels::active();
    let timing = trace::recording();
    let t0 = timing.then(Instant::now);
    let npanels = n.div_ceil(NR);
    let mpanels = m.div_ceil(MR);
    let panel_len = k * NR;
    let mut bpack = workspace::take(ba * npanels * panel_len);
    for bi in 0..ba {
        pack_b(
            k,
            n,
            &b.as_slice()[bi * k * n..(bi + 1) * k * n],
            &mut bpack[bi * npanels * panel_len..(bi + 1) * npanels * panel_len],
            None,
        );
    }
    if let Some(t0) = t0 {
        gemm_metrics().pack_ns.record(t0.elapsed().as_nanos() as u64);
    }

    let t1 = timing.then(Instant::now);
    let flops = 2usize.saturating_mul(ba).saturating_mul(m * k * n);
    let _serial = (flops < PAR_FLOP_THRESHOLD).then(|| parallel::with_threads(1));
    let base = SendPtr(out.as_mut_ptr());
    let (a_all, bpack_all) = (a.as_slice(), &bpack[..]);
    parallel::parallel_for(ba * mpanels, |t| {
        let (bi, pi) = (t / mpanels, t % mpanels);
        let i0 = pi * MR;
        let rows = MR.min(m - i0);
        let mut apack = workspace::take(k * MR);
        pack_a(k, &a_all[bi * m * k..(bi + 1) * m * k], i0, rows, &mut apack, None);
        // SAFETY: task t owns exactly rows `i0..i0+rows` of batch `bi`;
        // the (bi, pi) → task mapping is a bijection, so regions are
        // disjoint, and `out` outlives the thread scope.
        let orow = unsafe {
            std::slice::from_raw_parts_mut(base.get().add(bi * m * n + i0 * n), rows * n)
        };
        row_panel(kern, k, n, rows, &apack, &bpack_all[bi * npanels * panel_len..], orow);
    });
    if let Some(t1) = t1 {
        gemm_metrics().record_dispatch(t1, kern, flops);
    }
    Tensor::from_vec(out, [ba, m, n])
}

/// `out += a × b` for row-major `a: m×k`, `b: k×n`, `out: m×n`.
///
/// Packed-panel register-tiled kernel, parallel over `MR`-row output
/// panels. Per output element the accumulation chain is
/// `out[i,j] + a[i,0]·b[0,j] + a[i,1]·b[1,j] + …` in `k` order — exactly
/// the naive order — so the result is bit-identical to [`matmul_naive`]
/// (on a zeroed `out`) and to itself under any thread count or dispatched
/// micro-kernel.
pub fn sgemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    if legacy_kernel_enabled() {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(out.len(), m * n);
        return sgemm_axpy(m, k, n, a, b, out);
    }
    sgemm_fused(m, k, n, a, b, out, None, None);
}

/// [`sgemm`] with elementwise transforms fused into the pack step.
///
/// `fa`/`fb` are applied to each operand element exactly once while it
/// streams into its packed panel, so the result is bit-identical to
/// transforming the operands first and calling [`sgemm`] — without the
/// intermediate full-tensor write/read (padding lanes are never
/// transformed or stored back, so they cannot observe `f`).
///
/// Ignores the benchmark-only legacy-kernel toggle: the axpy kernel has
/// no pack step to fuse into.
#[allow(clippy::too_many_arguments)]
pub fn sgemm_fused(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    fa: Option<Transform<'_>>,
    fb: Option<Transform<'_>>,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }

    let kern = kernels::active();
    let timing = trace::recording();
    let t0 = timing.then(Instant::now);
    let npanels = n.div_ceil(NR);
    let mut bpack = workspace::take(npanels * k * NR);
    pack_b(k, n, b, &mut bpack, fb);
    if let Some(t0) = t0 {
        let metrics = gemm_metrics();
        let ns = t0.elapsed().as_nanos() as u64;
        metrics.pack_ns.record(ns);
        if fa.is_some() || fb.is_some() {
            metrics.fused_quantize_ns.record(ns);
        }
    }

    let t1 = timing.then(Instant::now);
    let mpanels = m.div_ceil(MR);
    let flops = 2usize.saturating_mul(m).saturating_mul(k * n);
    let _serial = (flops < PAR_FLOP_THRESHOLD).then(|| parallel::with_threads(1));
    let base = SendPtr(out.as_mut_ptr());
    let bpack_ref = &bpack[..];
    parallel::parallel_for(mpanels, |pi| {
        let i0 = pi * MR;
        let rows = MR.min(m - i0);
        let mut apack = workspace::take(k * MR);
        pack_a(k, a, i0, rows, &mut apack, fa);
        // SAFETY: panel pi owns exactly output rows `i0..i0+rows`; panels
        // partition `0..m` disjointly and `out` outlives the thread scope.
        let orow = unsafe { std::slice::from_raw_parts_mut(base.get().add(i0 * n), rows * n) };
        row_panel(kern, k, n, rows, &apack, bpack_ref, orow);
    });
    if let Some(t1) = t1 {
        gemm_metrics().record_dispatch(t1, kern, flops);
    }
}

/// Packs `b: k×n` into `⌈n/NR⌉` contiguous k-major panels:
/// `dst[(panel·k + kk)·NR + c] = f(b[kk, panel·NR + c])`, zero-padding the
/// ragged last panel so the micro-kernel never branches on width. With no
/// transform each row segment is a straight memcpy.
pub(crate) fn pack_b(k: usize, n: usize, b: &[f32], dst: &mut [f32], f: Option<Transform<'_>>) {
    let npanels = n.div_ceil(NR);
    for pj in 0..npanels {
        let j0 = pj * NR;
        let cols = NR.min(n - j0);
        let panel = &mut dst[pj * k * NR..(pj + 1) * k * NR];
        for kk in 0..k {
            let src = &b[kk * n + j0..kk * n + j0 + cols];
            match f {
                None => panel[kk * NR..kk * NR + cols].copy_from_slice(src),
                Some(f) => {
                    for (d, &s) in panel[kk * NR..kk * NR + cols].iter_mut().zip(src) {
                        *d = f(s);
                    }
                }
            }
            // Padding lanes stay zero: `workspace::take` hands out zeroed
            // buffers, and padded products are never stored back.
        }
    }
}

/// Packs rows `i0..i0+rows` of `a: ?×k` k-major:
/// `dst[kk·MR + r] = f(a[i0 + r, kk])`, zero-padding rows past `rows`
/// (padding is not transformed — it exists only for lane uniformity and
/// is never stored back).
pub(crate) fn pack_a(
    k: usize,
    a: &[f32],
    i0: usize,
    rows: usize,
    dst: &mut [f32],
    f: Option<Transform<'_>>,
) {
    for r in 0..rows {
        let arow = &a[(i0 + r) * k..(i0 + r + 1) * k];
        match f {
            None => {
                for (kk, &v) in arow.iter().enumerate() {
                    dst[kk * MR + r] = v;
                }
            }
            Some(f) => {
                for (kk, &v) in arow.iter().enumerate() {
                    dst[kk * MR + r] = f(v);
                }
            }
        }
    }
    if rows < MR {
        for kk in 0..k {
            for r in rows..MR {
                dst[kk * MR + r] = 0.0;
            }
        }
    }
}

/// `orow += apack × bpack` for one packed `rows×k` row panel against every
/// packed column panel of one matrix (`orow` has row stride `n`), running
/// the dispatched micro-kernel `kern` on each register tile.
pub(crate) fn row_panel(
    kern: Kernel,
    k: usize,
    n: usize,
    rows: usize,
    apack: &[f32],
    bpack: &[f32],
    orow: &mut [f32],
) {
    let npanels = n.div_ceil(NR);
    for pj in 0..npanels {
        let j0 = pj * NR;
        let cols = NR.min(n - j0);
        let bpanel = &bpack[pj * k * NR..(pj + 1) * k * NR];
        // Seed the register tile with the existing output (`+=`
        // semantics; 0.0 on matmul's freshly zeroed buffer, matching the
        // naive accumulator's starting value bit-for-bit). Padded lanes
        // seed 0.0 and may accumulate garbage (0·Inf = NaN) but are never
        // stored back.
        let mut acc = [[0.0f32; NR]; MR];
        for r in 0..rows {
            acc[r][..cols].copy_from_slice(&orow[r * n + j0..r * n + j0 + cols]);
        }
        kernels::run(kern, k, apack, bpanel, &mut acc);
        for r in 0..rows {
            orow[r * n + j0..r * n + j0 + cols].copy_from_slice(&acc[r][..cols]);
        }
    }
}

/// The pre-rewrite k-blocked axpy kernel, retained **only** as the
/// `gemm_bench` baseline (including its historical zero-skip, which drops
/// NaN/Inf propagation — do not use for real computation).
#[doc(hidden)]
pub fn sgemm_axpy(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    const KB: usize = 64;
    for k0 in (0..k).step_by(KB) {
        let kmax = (k0 + KB).min(k);
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for kk in k0..kmax {
                let aik = arow[kk];
                if aik == 0.0 {
                    continue;
                }
                let brow = &b[kk * n..(kk + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += aik * bv;
                }
            }
        }
    }
}

/// Naive triple-loop reference GEMM used by tests to validate [`sgemm`].
pub fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let n = b.dims()[1];
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for kk in 0..k {
                acc += a.as_slice()[i * k + kk] * b.as_slice()[kk * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(out, [m, n])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::with_threads;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Bitwise equality with the NaN-payload carve-out (see
    /// `kernels` module doc): non-NaN values must match exactly; NaN must
    /// appear at identical positions but may differ in payload.
    fn assert_bits_eq(a: &Tensor, b: &Tensor, ctx: &str) {
        assert_eq!(a.dims(), b.dims(), "{ctx}: shape");
        for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            assert!(
                x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan()),
                "{ctx}: bit mismatch at {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4.], [2, 2]);
        let eye = Tensor::from_vec(vec![1., 0., 0., 1.], [2, 2]);
        assert_eq!(matmul(&a, &eye), a);
        assert_eq!(matmul(&eye, &a), a);
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], [2, 3]);
        let b = Tensor::from_vec(vec![7., 8., 9., 10., 11., 12.], [3, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn packed_bit_exact_vs_naive_for_every_kernel() {
        let mut rng = StdRng::seed_from_u64(42);
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (4, 8, 8),
            (5, 9, 17),
            (17, 33, 9),
            (64, 70, 65),
            (128, 100, 3),
            (1, 64, 1),
        ] {
            let a = Tensor::randn([m, k], &mut rng);
            let b = Tensor::randn([k, n], &mut rng);
            let slow = matmul_naive(&a, &b);
            for kern in kernels::supported_kernels() {
                kernels::force(Some(kern));
                assert_bits_eq(&matmul(&a, &b), &slow, &format!("({m},{k},{n}) {kern}"));
            }
            kernels::force(None);
        }
    }

    #[test]
    fn matmul_bit_identical_across_thread_counts() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = Tensor::randn([65, 40, 33], &mut rng).reshape([65 * 40, 33]);
        let b = Tensor::randn([33, 29], &mut rng);
        let serial = {
            let _g = with_threads(1);
            matmul(&a, &b)
        };
        for threads in [2, 4, 8] {
            let _g = with_threads(threads);
            assert_bits_eq(&matmul(&a, &b), &serial, &format!("{threads} threads"));
        }
    }

    /// The old kernel's `aik == 0.0` skip dropped `0 × Inf = NaN`; the
    /// packed kernel must propagate it exactly like the naive reference —
    /// under every dispatched micro-kernel.
    #[test]
    fn nan_inf_propagation_matches_naive() {
        let a = Tensor::from_vec(vec![0.0, 1.0, 2.0, 0.0], [2, 2]);
        let b = Tensor::from_vec(vec![f32::INFINITY, 5.0, 6.0, f32::NEG_INFINITY], [2, 2]);
        let slow = matmul_naive(&a, &b);
        // NaN in a also survives a zero in the other operand.
        let a2 = Tensor::from_vec(vec![f32::NAN, 0.0, 0.0, 1.0], [2, 2]);
        let b2 = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], [2, 2]);
        let slow2 = matmul_naive(&a2, &b2);
        for kern in kernels::supported_kernels() {
            kernels::force(Some(kern));
            let fast = matmul(&a, &b);
            assert!(fast.as_slice()[0].is_nan(), "{kern}: 0·Inf must produce NaN");
            assert_bits_eq(&fast, &slow, &format!("nan-inf {kern}"));
            assert_bits_eq(&matmul(&a2, &b2), &slow2, &format!("nan-zero {kern}"));
        }
        kernels::force(None);
    }

    #[test]
    fn degenerate_dims() {
        for &(m, k, n) in &[(0, 3, 4), (3, 0, 4), (3, 4, 0), (0, 0, 0), (1, 0, 1)] {
            let a = Tensor::zeros([m, k]);
            let b = Tensor::zeros([k, n]);
            let c = matmul(&a, &b);
            assert_eq!(c.dims(), &[m, n]);
            assert!(c.as_slice().iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn sgemm_accumulates_into_existing_output() {
        // conv2d_backward relies on `out +=` across batches.
        let a = Tensor::from_vec(vec![1., 2., 3., 4.], [2, 2]);
        let b = Tensor::from_vec(vec![1., 0., 0., 1.], [2, 2]);
        let mut out = vec![10.0f32; 4];
        sgemm(2, 2, 2, a.as_slice(), b.as_slice(), &mut out);
        assert_eq!(out, [11., 12., 13., 14.]);
    }

    #[test]
    fn bmm_matches_per_batch_matmul_bitwise() {
        let mut rng = StdRng::seed_from_u64(7);
        let (ba, m, k, n) = (6, 13, 21, 10);
        let a = Tensor::randn([ba, m, k], &mut rng);
        let b = Tensor::randn([ba, k, n], &mut rng);
        let serial = {
            let _g = with_threads(1);
            bmm(&a, &b)
        };
        assert_eq!(serial.dims(), &[ba, m, n]);
        for i in 0..ba {
            let ai = Tensor::from_vec(a.as_slice()[i * m * k..(i + 1) * m * k].to_vec(), [m, k]);
            let bi = Tensor::from_vec(b.as_slice()[i * k * n..(i + 1) * k * n].to_vec(), [k, n]);
            let ci = matmul(&ai, &bi);
            let got =
                Tensor::from_vec(serial.as_slice()[i * m * n..(i + 1) * m * n].to_vec(), [m, n]);
            assert_bits_eq(&got, &ci, &format!("batch {i}"));
        }
        for threads in [2, 8] {
            let _g = with_threads(threads);
            assert_bits_eq(&bmm(&a, &b), &serial, &format!("bmm {threads} threads"));
        }
    }

    /// `matmul_fused(a, b, fa, fb)` must equal `matmul(map(a), map(b))`
    /// bit-for-bit — the fused quantize-into-pack contract — for every
    /// dispatched micro-kernel and thread count.
    #[test]
    fn fused_pack_matches_map_then_matmul_bitwise() {
        let mut rng = StdRng::seed_from_u64(21);
        let quant = |x: f32| (x * 4.0).round() * 0.25; // a toy quantizer
        let neg = |x: f32| -x;
        for &(m, k, n) in &[(5, 9, 17), (17, 33, 9), (64, 70, 65), (1, 1, 1), (3, 64, 16)] {
            let a = Tensor::randn([m, k], &mut rng);
            let b = Tensor::randn([k, n], &mut rng);
            let want = matmul(&a.map(quant), &b.map(quant));
            let want_b_only = matmul(&a, &b.map(neg));
            for kern in kernels::supported_kernels() {
                kernels::force(Some(kern));
                for threads in [1usize, 4] {
                    let _g = with_threads(threads);
                    let got = matmul_fused(&a, &b, Some(&quant), Some(&quant));
                    assert_bits_eq(&got, &want, &format!("fused ({m},{k},{n}) {kern} t{threads}"));
                    let got = matmul_fused(&a, &b, None, Some(&neg));
                    assert_bits_eq(&got, &want_b_only, &format!("fused-b ({m},{k},{n}) {kern}"));
                }
            }
            kernels::force(None);
        }
    }

    #[test]
    fn legacy_axpy_agrees_on_finite_inputs() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Tensor::randn([9, 14], &mut rng);
        let b = Tensor::randn([14, 11], &mut rng);
        let mut legacy = vec![0.0f32; 9 * 11];
        sgemm_axpy(9, 14, 11, a.as_slice(), b.as_slice(), &mut legacy);
        let packed = matmul(&a, &b);
        let legacy = Tensor::from_vec(legacy, [9, 11]);
        assert!(packed.allclose(&legacy, 1e-5));
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn matmul_dim_mismatch_panics() {
        matmul(&Tensor::zeros([2, 3]), &Tensor::zeros([4, 2]));
    }
}
