//! Explicit-SIMD micro-kernels and runtime CPU-feature dispatch.
//!
//! Three implementations of the same `MR×NR` register-tile contract:
//! a portable scalar loop, an AVX2 kernel (two 256-bit lanes per
//! accumulator row), and an AVX-512 kernel (one 512-bit lane per row —
//! `NR = 16` is exactly one zmm register). The best kernel the host
//! supports is detected once (`is_x86_feature_detected!`, cached in a
//! [`OnceLock`]) and can be pinned down — never up — with
//! `GOLDENEYE_KERNEL=scalar|avx2|avx512` or [`force`] for differential
//! testing and benchmarking.
//!
//! # Bit-exactness across ISAs
//!
//! Every kernel executes, per output element, the identical chain
//! `acc = acc + a·b` in `k` order. IEEE-754 vector lanes are elementwise:
//! `vaddps`/`vmulps` round each lane exactly like scalar `addss`/`mulss`,
//! so widening the vector changes *which elements share an instruction*,
//! never any element's value. The one instruction that would break this is
//! FMA — `vfmadd` keeps the product unrounded before the add, producing
//! different (better, but different) results than the scalar chain — so
//! the SIMD kernels deliberately use separate multiply and add even on
//! FMA-capable hosts. The differential suite in `tests/kernels.rs` pins
//! every kernel bit-for-bit against `matmul_naive`.
//!
//! One deliberate carve-out: **NaN payloads**. IEEE-754 leaves the sign
//! and payload of a NaN produced by an invalid operation unspecified, and
//! Rust documents NaN bit patterns as non-deterministic (LLVM freely
//! commutes `fadd` operands, and x86 resolves two-NaN adds to the first
//! source operand — so `QNaN + QNaN'` can surface either payload
//! depending on register allocation). The contract is therefore:
//! bit-identical for every non-NaN output, NaN-for-NaN at identical
//! positions otherwise. Campaign records never observe a payload: the
//! first format quantise canonicalises NaN per the format's encoding.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Rows per packed `a` panel (register-tile height).
pub(crate) const MR: usize = 4;
/// Columns per packed `b` panel (register-tile width; 16 lanes → one
/// 512-bit register per accumulator row on AVX-512, two 256-bit on AVX2).
pub(crate) const NR: usize = 16;

/// One micro-kernel implementation, selectable at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Kernel {
    /// The portable packed loop (autovectorised baseline).
    Scalar,
    /// 256-bit `core::arch` intrinsics (mul + add, no FMA).
    Avx2,
    /// 512-bit `core::arch` intrinsics (mul + add, no FMA).
    Avx512,
}

impl Kernel {
    /// Every kernel this build knows about, weakest first.
    pub const ALL: [Kernel; 3] = [Kernel::Scalar, Kernel::Avx2, Kernel::Avx512];

    /// The kernel's name as accepted by `GOLDENEYE_KERNEL`.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Avx2 => "avx2",
            Kernel::Avx512 => "avx512",
        }
    }

    /// Stable ordinal recorded under the `gemm.kernel` trace metric.
    pub fn ordinal(self) -> u64 {
        match self {
            Kernel::Scalar => 0,
            Kernel::Avx2 => 1,
            Kernel::Avx512 => 2,
        }
    }

    /// Parses a `GOLDENEYE_KERNEL` value (case-insensitive).
    pub fn parse(s: &str) -> Option<Kernel> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Some(Kernel::Scalar),
            "avx2" => Some(Kernel::Avx2),
            "avx512" | "avx512f" => Some(Kernel::Avx512),
            _ => None,
        }
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The best kernel the host CPU supports.
pub fn best_supported() -> Kernel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            return Kernel::Avx512;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return Kernel::Avx2;
        }
    }
    Kernel::Scalar
}

/// Whether the host CPU can execute `k`.
pub fn is_supported(k: Kernel) -> bool {
    k <= best_supported()
}

/// Every kernel the host CPU can execute, weakest first — the iteration
/// set for differential tests and per-kernel benchmarks.
pub fn supported_kernels() -> Vec<Kernel> {
    Kernel::ALL.into_iter().filter(|&k| is_supported(k)).collect()
}

/// Clamps a requested kernel to the hardware, warning once on fallback
/// (a mis-set `GOLDENEYE_KERNEL` must not abort a campaign — results are
/// bit-identical either way; only throughput differs).
fn clamp_supported(req: Kernel, origin: &str) -> Kernel {
    if is_supported(req) {
        return req;
    }
    let best = best_supported();
    static WARNED: OnceLock<()> = OnceLock::new();
    WARNED.get_or_init(|| {
        eprintln!(
            "warning: {origin} requests the {} kernel but this CPU supports at most {}; \
             falling back (results are bit-identical)",
            req.name(),
            best.name()
        );
    });
    best
}

/// Startup selection: `GOLDENEYE_KERNEL` if set and valid, else the best
/// supported kernel. Resolved once per process.
fn startup_kernel() -> Kernel {
    match std::env::var("GOLDENEYE_KERNEL") {
        Ok(v) => match Kernel::parse(&v) {
            Some(k) => clamp_supported(k, "GOLDENEYE_KERNEL"),
            None => {
                eprintln!(
                    "warning: unknown GOLDENEYE_KERNEL value {v:?} \
                     (expected scalar|avx2|avx512); using runtime detection"
                );
                best_supported()
            }
        },
        Err(_) => best_supported(),
    }
}

/// [`force`] encoding: `Kernel::ordinal() as usize`, or this sentinel for
/// "no override installed".
const FORCE_NONE: usize = usize::MAX;

/// Process-global test/bench override. Deliberately **not** thread-local:
/// [`super::sgemm`] resolves the kernel once per call and hands it to the
/// freshly spawned `parallel_for` workers, but independent GEMM calls on
/// other threads (e.g. campaign workers) must also observe a bench's
/// override, and scoped worker threads would never inherit a thread-local.
static FORCED: AtomicUsize = AtomicUsize::new(FORCE_NONE);

/// Overrides kernel dispatch process-wide until reset with `force(None)`.
/// An unsupported request clamps to the best supported kernel (with a
/// one-time warning). Intended for differential tests and benches; results
/// are bit-identical across kernels, so this is never a correctness knob.
pub fn force(k: Option<Kernel>) {
    let v = match k {
        Some(k) => clamp_supported(k, "kernels::force").ordinal() as usize,
        None => FORCE_NONE,
    };
    FORCED.store(v, Ordering::Relaxed);
}

/// The kernel the next GEMM dispatch will use: the [`force`] override if
/// installed, else the cached startup selection.
pub fn active() -> Kernel {
    match FORCED.load(Ordering::Relaxed) {
        0 => Kernel::Scalar,
        1 => Kernel::Avx2,
        2 => Kernel::Avx512,
        _ => {
            static STARTUP: OnceLock<Kernel> = OnceLock::new();
            *STARTUP.get_or_init(startup_kernel)
        }
    }
}

/// Runs the selected micro-kernel over one packed panel pair:
/// `acc[r][c] += Σ_kk apack[kk,r]·bpack[kk,c]`, accumulating in `kk`
/// order (the bit-exactness anchor shared by all implementations).
#[inline]
pub(super) fn run(kern: Kernel, k: usize, apack: &[f32], bpack: &[f32], acc: &mut [[f32; NR]; MR]) {
    debug_assert!(apack.len() >= k * MR);
    debug_assert!(bpack.len() >= k * NR);
    match kern {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: dispatch only yields Avx2/Avx512 after
        // `is_x86_feature_detected!` confirmed the feature (clamped in
        // `clamp_supported`), and the slice bounds are checked above.
        Kernel::Avx2 => unsafe { avx2(k, apack, bpack, acc) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        Kernel::Avx512 => unsafe { avx512(k, apack, bpack, acc) },
        _ => scalar(k, apack, bpack, acc),
    }
}

/// The portable micro-kernel: the fixed-size tile lets the autovectoriser
/// keep `acc` in SIMD registers; there is no k-blocking, so each element's
/// accumulation chain is a single in-order sum.
#[inline]
fn scalar(k: usize, apack: &[f32], bpack: &[f32], acc: &mut [[f32; NR]; MR]) {
    for kk in 0..k {
        let av: &[f32; MR] = apack[kk * MR..kk * MR + MR].try_into().unwrap();
        let bv: &[f32; NR] = bpack[kk * NR..kk * NR + NR].try_into().unwrap();
        for r in 0..MR {
            let ar = av[r];
            for c in 0..NR {
                acc[r][c] += ar * bv[c];
            }
        }
    }
}

/// AVX2 micro-kernel: the 4×16 tile lives in eight ymm accumulators (two
/// per row). Separate `vmulps`+`vaddps`, **not** `vfmadd`: FMA would skip
/// the intermediate rounding and diverge bitwise from [`scalar`].
///
/// # Safety
///
/// Caller must ensure the CPU supports AVX2 and that
/// `apack.len() >= k*MR`, `bpack.len() >= k*NR`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::needless_range_loop)] // index loops mirror the register tile
unsafe fn avx2(k: usize, apack: &[f32], bpack: &[f32], acc: &mut [[f32; NR]; MR]) {
    use core::arch::x86_64::*;
    let mut c: [[__m256; 2]; MR] = [[_mm256_setzero_ps(); 2]; MR];
    for r in 0..MR {
        c[r][0] = _mm256_loadu_ps(acc[r].as_ptr());
        c[r][1] = _mm256_loadu_ps(acc[r].as_ptr().add(8));
    }
    let mut ap = apack.as_ptr();
    let mut bp = bpack.as_ptr();
    for _ in 0..k {
        let b0 = _mm256_loadu_ps(bp);
        let b1 = _mm256_loadu_ps(bp.add(8));
        for r in 0..MR {
            let ar = _mm256_set1_ps(*ap.add(r));
            c[r][0] = _mm256_add_ps(c[r][0], _mm256_mul_ps(ar, b0));
            c[r][1] = _mm256_add_ps(c[r][1], _mm256_mul_ps(ar, b1));
        }
        ap = ap.add(MR);
        bp = bp.add(NR);
    }
    for r in 0..MR {
        _mm256_storeu_ps(acc[r].as_mut_ptr(), c[r][0]);
        _mm256_storeu_ps(acc[r].as_mut_ptr().add(8), c[r][1]);
    }
}

/// AVX-512 micro-kernel: `NR = 16` is exactly one zmm register, so the
/// whole 4×16 tile is four accumulators. Separate `vmulps`+`vaddps` for
/// the same bit-exactness reason as [`avx2`].
///
/// # Safety
///
/// Caller must ensure the CPU supports AVX-512F and that
/// `apack.len() >= k*MR`, `bpack.len() >= k*NR`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::needless_range_loop)] // index loops mirror the register tile
unsafe fn avx512(k: usize, apack: &[f32], bpack: &[f32], acc: &mut [[f32; NR]; MR]) {
    use core::arch::x86_64::*;
    let mut c: [__m512; MR] = [_mm512_setzero_ps(); MR];
    for r in 0..MR {
        c[r] = _mm512_loadu_ps(acc[r].as_ptr());
    }
    let mut ap = apack.as_ptr();
    let mut bp = bpack.as_ptr();
    for _ in 0..k {
        let b0 = _mm512_loadu_ps(bp);
        for r in 0..MR {
            let ar = _mm512_set1_ps(*ap.add(r));
            c[r] = _mm512_add_ps(c[r], _mm512_mul_ps(ar, b0));
        }
        ap = ap.add(MR);
        bp = bp.add(NR);
    }
    for r in 0..MR {
        _mm512_storeu_ps(acc[r].as_mut_ptr(), c[r]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile_of(seed: u64, k: usize) -> (Vec<f32>, Vec<f32>) {
        // Deterministic pseudo-random packs without pulling in rand here.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / (1 << 24) as f32) - 0.5
        };
        let apack: Vec<f32> = (0..k * MR).map(|_| next() * 4.0).collect();
        let bpack: Vec<f32> = (0..k * NR).map(|_| next() * 4.0).collect();
        (apack, bpack)
    }

    #[test]
    fn every_supported_kernel_matches_scalar_bitwise() {
        for k in [0usize, 1, 3, 17, 64, 129] {
            let (apack, bpack) = tile_of(k as u64 + 7, k);
            let mut want = [[0.25f32; NR]; MR];
            scalar(k, &apack, &bpack, &mut want);
            for kern in supported_kernels() {
                let mut got = [[0.25f32; NR]; MR];
                run(kern, k, &apack, &bpack, &mut got);
                for r in 0..MR {
                    for c in 0..NR {
                        assert_eq!(
                            got[r][c].to_bits(),
                            want[r][c].to_bits(),
                            "{kern} k={k} tile[{r}][{c}]: {} vs {}",
                            got[r][c],
                            want[r][c]
                        );
                    }
                }
            }
            // (Inputs are finite, so strict bit equality applies — the
            // NaN-payload carve-out in the module doc is exercised below.)
        }
    }

    #[test]
    fn kernels_propagate_nan_and_inf_like_scalar() {
        let k = 5;
        let (mut apack, mut bpack) = tile_of(99, k);
        apack[0] = 0.0;
        bpack[0] = f32::INFINITY; // 0·Inf = NaN in lane 0
        apack[MR] = f32::NAN;
        let mut want = [[0.0f32; NR]; MR];
        scalar(k, &apack, &bpack, &mut want);
        // apack[0] = a[kk=0][r=0] → 0·Inf hits lane [0][0]; apack[MR] =
        // a[kk=1][r=0] → the NaN operand sweeps every column of row 0.
        assert!(want[0][0].is_nan(), "scalar reference must see 0·Inf = NaN");
        assert!(want[0][NR - 1].is_nan(), "scalar reference must propagate the NaN operand");
        for kern in supported_kernels() {
            let mut got = [[0.0f32; NR]; MR];
            run(kern, k, &apack, &bpack, &mut got);
            for r in 0..MR {
                for c in 0..NR {
                    let (g, w) = (got[r][c], want[r][c]);
                    // NaN payloads are not pinned across ISAs (see module
                    // doc); everything else must match bitwise.
                    assert!(
                        g.to_bits() == w.to_bits() || (g.is_nan() && w.is_nan()),
                        "{kern} [{r}][{c}]: {g} vs {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn parse_and_names_round_trip() {
        for kern in Kernel::ALL {
            assert_eq!(Kernel::parse(kern.name()), Some(kern));
            assert_eq!(Kernel::parse(&kern.name().to_uppercase()), Some(kern));
        }
        assert_eq!(Kernel::parse("neon"), None);
        assert_eq!(Kernel::parse(""), None);
    }

    #[test]
    fn force_overrides_and_restores_dispatch() {
        let detected = active();
        force(Some(Kernel::Scalar));
        assert_eq!(active(), Kernel::Scalar);
        force(None);
        assert_eq!(active(), detected);
    }

    #[test]
    fn supported_set_is_prefix_ordered() {
        let sup = supported_kernels();
        assert!(sup.contains(&Kernel::Scalar), "scalar is always supported");
        // Support is monotone: anything weaker than a supported kernel is
        // also supported (the list is a prefix of ALL).
        assert_eq!(sup, Kernel::ALL[..sup.len()].to_vec());
    }
}
