//! Dense linear algebra kernels: 2-D and batched matrix multiplication.
//!
//! The inner kernel is a **packed-panel, register-tiled SGEMM**: `b` is
//! packed once into zero-padded [`NR`]-column panels, each [`MR`]-row
//! panel of `a` is packed k-major, and an `MR×NR` register-accumulator
//! micro-kernel walks the full `k` extent in one pass. Row panels are
//! independent, so they are dispatched to the intra-op worker pool
//! ([`crate::parallel`]); every output element is produced by exactly one
//! task with a fixed accumulation order, which makes results **bit-exact**
//! against [`matmul_naive`] and identical for every thread count. See
//! DESIGN.md §10 for the blocking scheme and the determinism argument.

use std::sync::OnceLock;
use std::time::Instant;

use crate::parallel::{self, SendPtr};
use crate::tensor::Tensor;
use crate::workspace;

/// Rows per packed `a` panel (register-tile height).
const MR: usize = 4;
/// Columns per packed `b` panel (register-tile width; 16 lanes → one
/// 512-bit register per accumulator row on AVX-512, two 256-bit on AVX2).
const NR: usize = 16;
/// Below this many flops (`2·m·k·n`) the panel loop stays on one thread —
/// spawn overhead beats the win on small problems.
const PAR_FLOP_THRESHOLD: usize = 1 << 21;

/// Benchmark-only escape hatch: when set, [`sgemm`] (and everything built
/// on it: `matmul`, conv2d) routes through the legacy axpy kernel so
/// `campaign_scaling` can measure end-to-end before/after throughput in
/// one process. Never enable outside benchmarks — the legacy kernel keeps
/// the historical zero-skip that drops NaN/Inf propagation.
static LEGACY_KERNEL: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

#[doc(hidden)]
pub fn set_legacy_kernel(on: bool) {
    LEGACY_KERNEL.store(on, std::sync::atomic::Ordering::Relaxed);
}

struct GemmMetrics {
    pack_ns: &'static trace::Metric,
    kernel_ns: &'static trace::Metric,
    flops: &'static trace::Metric,
}

fn gemm_metrics() -> &'static GemmMetrics {
    static METRICS: OnceLock<GemmMetrics> = OnceLock::new();
    METRICS.get_or_init(|| GemmMetrics {
        pack_ns: trace::histogram(trace::names::TENSOR_GEMM_PACK_NS),
        kernel_ns: trace::histogram(trace::names::TENSOR_GEMM_KERNEL_NS),
        flops: trace::counter(trace::names::TENSOR_GEMM_FLOPS),
    })
}

/// Multiplies two matrices: `[m, k] × [k, n] → [m, n]`.
///
/// # Panics
///
/// Panics if operands are not 2-D or the inner dimensions disagree.
///
/// # Examples
///
/// ```
/// use tensor::{Tensor, linalg::matmul};
/// let a = Tensor::from_vec(vec![1., 2., 3., 4.], [2, 2]);
/// let b = Tensor::from_vec(vec![5., 6., 7., 8.], [2, 2]);
/// assert_eq!(matmul(&a, &b).as_slice(), &[19., 22., 43., 50.]);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2, "matmul lhs must be 2-D, got {:?}", a.shape());
    assert_eq!(b.ndim(), 2, "matmul rhs must be 2-D, got {:?}", b.shape());
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul inner dims: {:?} × {:?}", a.shape(), b.shape());
    let mut out = vec![0.0f32; m * n];
    sgemm(m, k, n, a.as_slice(), b.as_slice(), &mut out);
    Tensor::from_vec(out, [m, n])
}

/// Batched matrix multiply: `[b, m, k] × [b, k, n] → [b, m, n]`.
///
/// Every `(batch, row-panel)` pair is an independent task on the shared
/// worker pool, so large batches of small matrices parallelise as well as
/// one large matrix; per-batch results are bit-identical to per-batch
/// [`matmul`] calls.
///
/// # Panics
///
/// Panics if operands are not 3-D or batch/inner dimensions disagree.
pub fn bmm(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 3, "bmm lhs must be 3-D, got {:?}", a.shape());
    assert_eq!(b.ndim(), 3, "bmm rhs must be 3-D, got {:?}", b.shape());
    let (ba, m, k) = (a.dims()[0], a.dims()[1], a.dims()[2]);
    let (bb, k2, n) = (b.dims()[0], b.dims()[1], b.dims()[2]);
    assert_eq!(ba, bb, "bmm batch dims: {:?} × {:?}", a.shape(), b.shape());
    assert_eq!(k, k2, "bmm inner dims: {:?} × {:?}", a.shape(), b.shape());
    let mut out = vec![0.0f32; ba * m * n];
    if ba == 0 || m == 0 || n == 0 {
        return Tensor::from_vec(out, [ba, m, n]);
    }

    let timing = trace::recording();
    let t0 = timing.then(Instant::now);
    let npanels = n.div_ceil(NR);
    let mpanels = m.div_ceil(MR);
    let panel_len = k * NR;
    let mut bpack = workspace::take(ba * npanels * panel_len);
    for bi in 0..ba {
        pack_b(
            k,
            n,
            &b.as_slice()[bi * k * n..(bi + 1) * k * n],
            &mut bpack[bi * npanels * panel_len..(bi + 1) * npanels * panel_len],
        );
    }
    if let Some(t0) = t0 {
        gemm_metrics().pack_ns.record(t0.elapsed().as_nanos() as u64);
    }

    let t1 = timing.then(Instant::now);
    let flops = 2usize.saturating_mul(ba).saturating_mul(m * k * n);
    let _serial = (flops < PAR_FLOP_THRESHOLD).then(|| parallel::with_threads(1));
    let base = SendPtr(out.as_mut_ptr());
    let (a_all, bpack_all) = (a.as_slice(), &bpack[..]);
    parallel::parallel_for(ba * mpanels, |t| {
        let (bi, pi) = (t / mpanels, t % mpanels);
        let i0 = pi * MR;
        let rows = MR.min(m - i0);
        let mut apack = workspace::take(k * MR);
        pack_a(k, &a_all[bi * m * k..(bi + 1) * m * k], i0, rows, &mut apack);
        // SAFETY: task t owns exactly rows `i0..i0+rows` of batch `bi`;
        // the (bi, pi) → task mapping is a bijection, so regions are
        // disjoint, and `out` outlives the thread scope.
        let orow = unsafe {
            std::slice::from_raw_parts_mut(base.get().add(bi * m * n + i0 * n), rows * n)
        };
        row_panel(k, n, rows, &apack, &bpack_all[bi * npanels * panel_len..], orow);
    });
    if let Some(t1) = t1 {
        let metrics = gemm_metrics();
        metrics.kernel_ns.record(t1.elapsed().as_nanos() as u64);
        metrics.flops.add(flops as u64);
    }
    Tensor::from_vec(out, [ba, m, n])
}

/// `out += a × b` for row-major `a: m×k`, `b: k×n`, `out: m×n`.
///
/// Packed-panel register-tiled kernel, parallel over `MR`-row output
/// panels. Per output element the accumulation chain is
/// `out[i,j] + a[i,0]·b[0,j] + a[i,1]·b[1,j] + …` in `k` order — exactly
/// the naive order — so the result is bit-identical to [`matmul_naive`]
/// (on a zeroed `out`) and to itself under any thread count.
pub fn sgemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    if LEGACY_KERNEL.load(std::sync::atomic::Ordering::Relaxed) {
        return sgemm_axpy(m, k, n, a, b, out);
    }

    let timing = trace::recording();
    let t0 = timing.then(Instant::now);
    let npanels = n.div_ceil(NR);
    let mut bpack = workspace::take(npanels * k * NR);
    pack_b(k, n, b, &mut bpack);
    if let Some(t0) = t0 {
        gemm_metrics().pack_ns.record(t0.elapsed().as_nanos() as u64);
    }

    let t1 = timing.then(Instant::now);
    let mpanels = m.div_ceil(MR);
    let flops = 2usize.saturating_mul(m).saturating_mul(k * n);
    let _serial = (flops < PAR_FLOP_THRESHOLD).then(|| parallel::with_threads(1));
    let base = SendPtr(out.as_mut_ptr());
    let bpack_ref = &bpack[..];
    parallel::parallel_for(mpanels, |pi| {
        let i0 = pi * MR;
        let rows = MR.min(m - i0);
        let mut apack = workspace::take(k * MR);
        pack_a(k, a, i0, rows, &mut apack);
        // SAFETY: panel pi owns exactly output rows `i0..i0+rows`; panels
        // partition `0..m` disjointly and `out` outlives the thread scope.
        let orow = unsafe { std::slice::from_raw_parts_mut(base.get().add(i0 * n), rows * n) };
        row_panel(k, n, rows, &apack, bpack_ref, orow);
    });
    if let Some(t1) = t1 {
        let metrics = gemm_metrics();
        metrics.kernel_ns.record(t1.elapsed().as_nanos() as u64);
        metrics.flops.add(flops as u64);
    }
}

/// Packs `b: k×n` into `⌈n/NR⌉` contiguous k-major panels:
/// `dst[(panel·k + kk)·NR + c] = b[kk, panel·NR + c]`, zero-padding the
/// ragged last panel so the micro-kernel never branches on width.
fn pack_b(k: usize, n: usize, b: &[f32], dst: &mut [f32]) {
    let npanels = n.div_ceil(NR);
    for pj in 0..npanels {
        let j0 = pj * NR;
        let cols = NR.min(n - j0);
        let panel = &mut dst[pj * k * NR..(pj + 1) * k * NR];
        for kk in 0..k {
            let src = &b[kk * n + j0..kk * n + j0 + cols];
            panel[kk * NR..kk * NR + cols].copy_from_slice(src);
            // Padding lanes stay zero: `workspace::take` hands out zeroed
            // buffers, and padded products are never stored back.
        }
    }
}

/// Packs rows `i0..i0+rows` of `a: ?×k` k-major:
/// `dst[kk·MR + r] = a[i0 + r, kk]`, zero-padding rows past `rows`.
fn pack_a(k: usize, a: &[f32], i0: usize, rows: usize, dst: &mut [f32]) {
    for r in 0..rows {
        let arow = &a[(i0 + r) * k..(i0 + r + 1) * k];
        for (kk, &v) in arow.iter().enumerate() {
            dst[kk * MR + r] = v;
        }
    }
    if rows < MR {
        for kk in 0..k {
            for r in rows..MR {
                dst[kk * MR + r] = 0.0;
            }
        }
    }
}

/// `orow += apack × bpack` for one packed `rows×k` row panel against every
/// packed column panel of one matrix (`orow` has row stride `n`).
fn row_panel(k: usize, n: usize, rows: usize, apack: &[f32], bpack: &[f32], orow: &mut [f32]) {
    let npanels = n.div_ceil(NR);
    for pj in 0..npanels {
        let j0 = pj * NR;
        let cols = NR.min(n - j0);
        let bpanel = &bpack[pj * k * NR..(pj + 1) * k * NR];
        // Seed the register tile with the existing output (`+=`
        // semantics; 0.0 on matmul's freshly zeroed buffer, matching the
        // naive accumulator's starting value bit-for-bit). Padded lanes
        // seed 0.0 and may accumulate garbage (0·Inf = NaN) but are never
        // stored back.
        let mut acc = [[0.0f32; NR]; MR];
        for r in 0..rows {
            acc[r][..cols].copy_from_slice(&orow[r * n + j0..r * n + j0 + cols]);
        }
        kernel(k, apack, bpanel, &mut acc);
        for r in 0..rows {
            orow[r * n + j0..r * n + j0 + cols].copy_from_slice(&acc[r][..cols]);
        }
    }
}

/// The `MR×NR` register-tile micro-kernel: one pass over the full `k`
/// extent, accumulating `acc[r][c] += apack[kk,r]·bpack[kk,c]` for each
/// `kk` in order. The fixed-size tile lets the autovectoriser keep `acc`
/// in SIMD registers; there is no k-blocking, so each element's
/// accumulation chain is a single in-order sum (the determinism anchor).
#[inline]
fn kernel(k: usize, apack: &[f32], bpack: &[f32], acc: &mut [[f32; NR]; MR]) {
    for kk in 0..k {
        let av: &[f32; MR] = apack[kk * MR..kk * MR + MR].try_into().unwrap();
        let bv: &[f32; NR] = bpack[kk * NR..kk * NR + NR].try_into().unwrap();
        for r in 0..MR {
            let ar = av[r];
            for c in 0..NR {
                acc[r][c] += ar * bv[c];
            }
        }
    }
}

/// The pre-rewrite k-blocked axpy kernel, retained **only** as the
/// `gemm_bench` baseline (including its historical zero-skip, which drops
/// NaN/Inf propagation — do not use for real computation).
#[doc(hidden)]
pub fn sgemm_axpy(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    const KB: usize = 64;
    for k0 in (0..k).step_by(KB) {
        let kmax = (k0 + KB).min(k);
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for kk in k0..kmax {
                let aik = arow[kk];
                if aik == 0.0 {
                    continue;
                }
                let brow = &b[kk * n..(kk + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += aik * bv;
                }
            }
        }
    }
}

/// Naive triple-loop reference GEMM used by tests to validate [`sgemm`].
pub fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let n = b.dims()[1];
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for kk in 0..k {
                acc += a.as_slice()[i * k + kk] * b.as_slice()[kk * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(out, [m, n])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::with_threads;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_bits_eq(a: &Tensor, b: &Tensor, ctx: &str) {
        assert_eq!(a.dims(), b.dims(), "{ctx}: shape");
        for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: bit mismatch at {i}: {x} vs {y}");
        }
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4.], [2, 2]);
        let eye = Tensor::from_vec(vec![1., 0., 0., 1.], [2, 2]);
        assert_eq!(matmul(&a, &eye), a);
        assert_eq!(matmul(&eye, &a), a);
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], [2, 3]);
        let b = Tensor::from_vec(vec![7., 8., 9., 10., 11., 12.], [3, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn packed_bit_exact_vs_naive() {
        let mut rng = StdRng::seed_from_u64(42);
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (4, 8, 8),
            (5, 9, 17),
            (17, 33, 9),
            (64, 70, 65),
            (128, 100, 3),
            (1, 64, 1),
        ] {
            let a = Tensor::randn([m, k], &mut rng);
            let b = Tensor::randn([k, n], &mut rng);
            let slow = matmul_naive(&a, &b);
            assert_bits_eq(&matmul(&a, &b), &slow, &format!("({m},{k},{n})"));
        }
    }

    #[test]
    fn matmul_bit_identical_across_thread_counts() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = Tensor::randn([65, 40, 33], &mut rng).reshape([65 * 40, 33]);
        let b = Tensor::randn([33, 29], &mut rng);
        let serial = {
            let _g = with_threads(1);
            matmul(&a, &b)
        };
        for threads in [2, 4, 8] {
            let _g = with_threads(threads);
            assert_bits_eq(&matmul(&a, &b), &serial, &format!("{threads} threads"));
        }
    }

    /// The old kernel's `aik == 0.0` skip dropped `0 × Inf = NaN`; the
    /// packed kernel must propagate it exactly like the naive reference.
    #[test]
    fn nan_inf_propagation_matches_naive() {
        let a = Tensor::from_vec(vec![0.0, 1.0, 2.0, 0.0], [2, 2]);
        let b = Tensor::from_vec(vec![f32::INFINITY, 5.0, 6.0, f32::NEG_INFINITY], [2, 2]);
        let fast = matmul(&a, &b);
        let slow = matmul_naive(&a, &b);
        assert!(fast.as_slice()[0].is_nan(), "0·Inf must produce NaN, got {}", fast.as_slice()[0]);
        assert_bits_eq(&fast, &slow, "nan-inf");
        // NaN in a also survives a zero in the other operand.
        let a2 = Tensor::from_vec(vec![f32::NAN, 0.0, 0.0, 1.0], [2, 2]);
        let b2 = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], [2, 2]);
        assert_bits_eq(&matmul(&a2, &b2), &matmul_naive(&a2, &b2), "nan-zero");
    }

    #[test]
    fn degenerate_dims() {
        for &(m, k, n) in &[(0, 3, 4), (3, 0, 4), (3, 4, 0), (0, 0, 0), (1, 0, 1)] {
            let a = Tensor::zeros([m, k]);
            let b = Tensor::zeros([k, n]);
            let c = matmul(&a, &b);
            assert_eq!(c.dims(), &[m, n]);
            assert!(c.as_slice().iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn sgemm_accumulates_into_existing_output() {
        // conv2d_backward relies on `out +=` across batches.
        let a = Tensor::from_vec(vec![1., 2., 3., 4.], [2, 2]);
        let b = Tensor::from_vec(vec![1., 0., 0., 1.], [2, 2]);
        let mut out = vec![10.0f32; 4];
        sgemm(2, 2, 2, a.as_slice(), b.as_slice(), &mut out);
        assert_eq!(out, [11., 12., 13., 14.]);
    }

    #[test]
    fn bmm_matches_per_batch_matmul_bitwise() {
        let mut rng = StdRng::seed_from_u64(7);
        let (ba, m, k, n) = (6, 13, 21, 10);
        let a = Tensor::randn([ba, m, k], &mut rng);
        let b = Tensor::randn([ba, k, n], &mut rng);
        let serial = {
            let _g = with_threads(1);
            bmm(&a, &b)
        };
        assert_eq!(serial.dims(), &[ba, m, n]);
        for i in 0..ba {
            let ai = Tensor::from_vec(a.as_slice()[i * m * k..(i + 1) * m * k].to_vec(), [m, k]);
            let bi = Tensor::from_vec(b.as_slice()[i * k * n..(i + 1) * k * n].to_vec(), [k, n]);
            let ci = matmul(&ai, &bi);
            let got =
                Tensor::from_vec(serial.as_slice()[i * m * n..(i + 1) * m * n].to_vec(), [m, n]);
            assert_bits_eq(&got, &ci, &format!("batch {i}"));
        }
        for threads in [2, 8] {
            let _g = with_threads(threads);
            assert_bits_eq(&bmm(&a, &b), &serial, &format!("bmm {threads} threads"));
        }
    }

    #[test]
    fn legacy_axpy_agrees_on_finite_inputs() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Tensor::randn([9, 14], &mut rng);
        let b = Tensor::randn([14, 11], &mut rng);
        let mut legacy = vec![0.0f32; 9 * 11];
        sgemm_axpy(9, 14, 11, a.as_slice(), b.as_slice(), &mut legacy);
        let packed = matmul(&a, &b);
        let legacy = Tensor::from_vec(legacy, [9, 11]);
        assert!(packed.allclose(&legacy, 1e-5));
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn matmul_dim_mismatch_panics() {
        matmul(&Tensor::zeros([2, 3]), &Tensor::zeros([4, 2]));
    }
}
