//! Dense linear algebra kernels: 2-D and batched matrix multiplication.
//!
//! The inner kernel is a cache-blocked, register-tiled SGEMM written for the
//! autovectoriser. It is nowhere near BLAS speed, but it is fast enough to
//! run the paper's model-scale experiments on a CPU.

use crate::tensor::Tensor;

/// Multiplies two matrices: `[m, k] × [k, n] → [m, n]`.
///
/// # Panics
///
/// Panics if operands are not 2-D or the inner dimensions disagree.
///
/// # Examples
///
/// ```
/// use tensor::{Tensor, linalg::matmul};
/// let a = Tensor::from_vec(vec![1., 2., 3., 4.], [2, 2]);
/// let b = Tensor::from_vec(vec![5., 6., 7., 8.], [2, 2]);
/// assert_eq!(matmul(&a, &b).as_slice(), &[19., 22., 43., 50.]);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2, "matmul lhs must be 2-D, got {:?}", a.shape());
    assert_eq!(b.ndim(), 2, "matmul rhs must be 2-D, got {:?}", b.shape());
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul inner dims: {:?} × {:?}", a.shape(), b.shape());
    let mut out = vec![0.0f32; m * n];
    sgemm(m, k, n, a.as_slice(), b.as_slice(), &mut out);
    Tensor::from_vec(out, [m, n])
}

/// Batched matrix multiply: `[b, m, k] × [b, k, n] → [b, m, n]`.
///
/// # Panics
///
/// Panics if operands are not 3-D or batch/inner dimensions disagree.
pub fn bmm(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 3, "bmm lhs must be 3-D, got {:?}", a.shape());
    assert_eq!(b.ndim(), 3, "bmm rhs must be 3-D, got {:?}", b.shape());
    let (ba, m, k) = (a.dims()[0], a.dims()[1], a.dims()[2]);
    let (bb, k2, n) = (b.dims()[0], b.dims()[1], b.dims()[2]);
    assert_eq!(ba, bb, "bmm batch dims: {:?} × {:?}", a.shape(), b.shape());
    assert_eq!(k, k2, "bmm inner dims: {:?} × {:?}", a.shape(), b.shape());
    let mut out = vec![0.0f32; ba * m * n];
    for i in 0..ba {
        sgemm(
            m,
            k,
            n,
            &a.as_slice()[i * m * k..(i + 1) * m * k],
            &b.as_slice()[i * k * n..(i + 1) * k * n],
            &mut out[i * m * n..(i + 1) * m * n],
        );
    }
    Tensor::from_vec(out, [ba, m, n])
}

/// `out += a × b` for row-major `a: m×k`, `b: k×n`, `out: m×n`.
///
/// Blocked over k to keep panels of `b` hot in cache; the innermost loop is
/// a simple `axpy` over a row of `b`, which autovectorises well.
pub fn sgemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    const KB: usize = 64;
    for k0 in (0..k).step_by(KB) {
        let kmax = (k0 + KB).min(k);
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for kk in k0..kmax {
                let aik = arow[kk];
                if aik == 0.0 {
                    continue;
                }
                let brow = &b[kk * n..(kk + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += aik * bv;
                }
            }
        }
    }
}

/// Naive triple-loop reference GEMM used by tests to validate [`sgemm`].
pub fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let n = b.dims()[1];
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for kk in 0..k {
                acc += a.as_slice()[i * k + kk] * b.as_slice()[kk * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(out, [m, n])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4.], [2, 2]);
        let eye = Tensor::from_vec(vec![1., 0., 0., 1.], [2, 2]);
        assert_eq!(matmul(&a, &eye), a);
        assert_eq!(matmul(&eye, &a), a);
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], [2, 3]);
        let b = Tensor::from_vec(vec![7., 8., 9., 10., 11., 12.], [3, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn blocked_matches_naive_random() {
        let mut rng = StdRng::seed_from_u64(42);
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (17, 33, 9), (64, 70, 65), (128, 100, 3)] {
            let a = Tensor::randn([m, k], &mut rng);
            let b = Tensor::randn([k, n], &mut rng);
            let fast = matmul(&a, &b);
            let slow = matmul_naive(&a, &b);
            assert!(fast.allclose(&slow, 1e-4), "mismatch at ({m},{k},{n})");
        }
    }

    #[test]
    fn bmm_matches_per_batch_matmul() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Tensor::randn([4, 5, 6], &mut rng);
        let b = Tensor::randn([4, 6, 3], &mut rng);
        let c = bmm(&a, &b);
        assert_eq!(c.dims(), &[4, 5, 3]);
        for i in 0..4 {
            let ai = Tensor::from_vec(a.as_slice()[i * 30..(i + 1) * 30].to_vec(), [5, 6]);
            let bi = Tensor::from_vec(b.as_slice()[i * 18..(i + 1) * 18].to_vec(), [6, 3]);
            let ci = matmul(&ai, &bi);
            let got = &c.as_slice()[i * 15..(i + 1) * 15];
            assert!(Tensor::from_vec(got.to_vec(), [5, 3]).allclose(&ci, 1e-5));
        }
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn matmul_dim_mismatch_panics() {
        matmul(&Tensor::zeros([2, 3]), &Tensor::zeros([4, 2]));
    }
}
