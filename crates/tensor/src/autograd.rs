//! Tape-based reverse-mode automatic differentiation.
//!
//! The paper's tool supports number-format emulation during training because
//! PyTorch provides backpropagation; this module is the equivalent substrate
//! here. A [`Tape`] records operations on [`Var`] handles; [`Var::backward`]
//! replays the tape in reverse, accumulating gradients.
//!
//! Quantisation hooks participate in training through
//! [`Var::apply_ste`], which applies an arbitrary tensor→tensor function in
//! the forward pass and passes gradients straight through (the standard
//! straight-through estimator for non-differentiable quantisers).
//!
//! # Examples
//!
//! ```
//! use tensor::{Tape, Tensor};
//! let tape = Tape::new();
//! let x = tape.leaf(Tensor::from_vec(vec![2.0], [1]));
//! let y = x.mul(&x).scale(3.0); // y = 3x²
//! let grads = y.backward();
//! assert_eq!(grads.get(&x).unwrap().as_slice(), &[12.0]); // dy/dx = 6x
//! ```

use crate::conv::{
    conv2d, conv2d_backward, global_avg_pool, global_avg_pool_backward, maxpool2d,
    maxpool2d_backward, Conv2dSpec,
};
use crate::linalg::{bmm, matmul};
use crate::ops;
use crate::shape::Shape;
use crate::tensor::Tensor;
use std::cell::RefCell;
use std::rc::Rc;

type BackwardFn = Box<dyn Fn(&Tensor, &mut GradStore)>;

struct TapeInner {
    values: Vec<Tensor>,
    entries: Vec<Entry>,
    recording: bool,
}

struct Entry {
    output: usize,
    backward: BackwardFn,
}

/// A recording tape for reverse-mode autodiff.
///
/// Cloning a `Tape` is cheap: clones share the same recording.
#[derive(Clone)]
pub struct Tape {
    inner: Rc<RefCell<TapeInner>>,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Tape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        write!(
            f,
            "Tape(nodes={}, entries={}, recording={})",
            inner.values.len(),
            inner.entries.len(),
            inner.recording
        )
    }
}

impl Tape {
    /// Creates an empty, recording tape.
    pub fn new() -> Self {
        Tape {
            inner: Rc::new(RefCell::new(TapeInner {
                values: Vec::new(),
                entries: Vec::new(),
                recording: true,
            })),
        }
    }

    /// Creates a tape with recording disabled (inference mode): values flow
    /// forward but no backward entries are stored.
    pub fn inference() -> Self {
        let t = Tape::new();
        t.inner.borrow_mut().recording = false;
        t
    }

    /// Whether operations are being recorded.
    pub fn is_recording(&self) -> bool {
        self.inner.borrow().recording
    }

    /// Enables or disables recording.
    pub fn set_recording(&self, on: bool) {
        self.inner.borrow_mut().recording = on;
    }

    /// Number of nodes on the tape.
    pub fn len(&self) -> usize {
        self.inner.borrow().values.len()
    }

    /// True if the tape has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Adds a leaf node (an input or parameter) and returns its handle.
    pub fn leaf(&self, value: Tensor) -> Var {
        let id = self.push_value(value);
        Var { tape: self.clone(), id }
    }

    fn push_value(&self, value: Tensor) -> usize {
        let mut inner = self.inner.borrow_mut();
        inner.values.push(value);
        inner.values.len() - 1
    }

    fn push_op(&self, value: Tensor, backward: BackwardFn) -> usize {
        let id = self.push_value(value);
        let mut inner = self.inner.borrow_mut();
        if inner.recording {
            inner.entries.push(Entry { output: id, backward });
        }
        id
    }

    fn value(&self, id: usize) -> Tensor {
        self.inner.borrow().values[id].clone()
    }
}

/// Accumulated gradients keyed by tape node.
#[derive(Debug)]
pub struct GradStore {
    grads: Vec<Option<Tensor>>,
}

impl GradStore {
    fn new(n: usize) -> Self {
        GradStore { grads: (0..n).map(|_| None).collect() }
    }

    /// Accumulates `g` into the gradient for node `id`.
    pub fn accumulate(&mut self, id: usize, g: Tensor) {
        match &mut self.grads[id] {
            Some(existing) => *existing = ops::add(existing, &g),
            slot @ None => *slot = Some(g),
        }
    }

    /// The gradient of the differentiated output with respect to `var`,
    /// or `None` if `var` did not influence it.
    pub fn get(&self, var: &Var) -> Option<&Tensor> {
        self.grads.get(var.id).and_then(Option::as_ref)
    }
}

/// A handle to a node on a [`Tape`].
#[derive(Clone)]
pub struct Var {
    tape: Tape,
    id: usize,
}

impl std::fmt::Debug for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Var(id={}, value={:?})", self.id, self.value())
    }
}

impl Var {
    /// The current value of this node (cloned out of the tape).
    pub fn value(&self) -> Tensor {
        self.tape.value(self.id)
    }

    /// The tape this variable lives on.
    pub fn tape(&self) -> &Tape {
        &self.tape
    }

    /// The shape of this node's value.
    pub fn shape(&self) -> Shape {
        self.tape.inner.borrow().values[self.id].shape().clone()
    }

    fn unary(&self, value: Tensor, backward: impl Fn(&Tensor, &mut GradStore) + 'static) -> Var {
        let id = self.tape.push_op(value, Box::new(backward));
        Var { tape: self.tape.clone(), id }
    }

    /// Elementwise sum with broadcasting.
    pub fn add(&self, other: &Var) -> Var {
        let (a, b) = (self.value(), other.value());
        let (sa, sb) = (a.shape().clone(), b.shape().clone());
        let (ia, ib) = (self.id, other.id);
        self.unary(ops::add(&a, &b), move |g, store| {
            store.accumulate(ia, ops::reduce_to_shape(g, &sa));
            store.accumulate(ib, ops::reduce_to_shape(g, &sb));
        })
    }

    /// Elementwise difference with broadcasting.
    pub fn sub(&self, other: &Var) -> Var {
        let (a, b) = (self.value(), other.value());
        let (sa, sb) = (a.shape().clone(), b.shape().clone());
        let (ia, ib) = (self.id, other.id);
        self.unary(ops::sub(&a, &b), move |g, store| {
            store.accumulate(ia, ops::reduce_to_shape(g, &sa));
            store.accumulate(ib, ops::reduce_to_shape(&ops::scale(g, -1.0), &sb));
        })
    }

    /// Elementwise product with broadcasting.
    pub fn mul(&self, other: &Var) -> Var {
        let (a, b) = (self.value(), other.value());
        let (sa, sb) = (a.shape().clone(), b.shape().clone());
        let (ia, ib) = (self.id, other.id);
        let (ac, bc) = (a.clone(), b.clone());
        self.unary(ops::mul(&a, &b), move |g, store| {
            store.accumulate(ia, ops::reduce_to_shape(&ops::mul(g, &bc), &sa));
            store.accumulate(ib, ops::reduce_to_shape(&ops::mul(g, &ac), &sb));
        })
    }

    /// Multiplies by a scalar.
    pub fn scale(&self, s: f32) -> Var {
        let a = self.value();
        let ia = self.id;
        self.unary(ops::scale(&a, s), move |g, store| {
            store.accumulate(ia, ops::scale(g, s));
        })
    }

    /// Adds a scalar.
    pub fn add_scalar(&self, s: f32) -> Var {
        let a = self.value();
        let ia = self.id;
        self.unary(ops::add_scalar(&a, s), move |g, store| {
            store.accumulate(ia, g.clone());
        })
    }

    /// Elementwise reciprocal.
    pub fn recip(&self) -> Var {
        let a = self.value();
        let ia = self.id;
        let ac = a.clone();
        self.unary(a.map(|x| 1.0 / x), move |g, store| {
            let ga = ops::zip_broadcast(g, &ac, |gv, x| -gv / (x * x));
            store.accumulate(ia, ga);
        })
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Var {
        let a = self.value();
        let out = a.map(f32::sqrt);
        let ia = self.id;
        let oc = out.clone();
        self.unary(out, move |g, store| {
            let ga = ops::zip_broadcast(g, &oc, |gv, s| gv / (2.0 * s));
            store.accumulate(ia, ga);
        })
    }

    /// Rectified linear unit.
    pub fn relu(&self) -> Var {
        let a = self.value();
        let ia = self.id;
        let ac = a.clone();
        self.unary(ops::relu(&a), move |g, store| {
            let ga = ops::zip_broadcast(g, &ac, |gv, x| if x > 0.0 { gv } else { 0.0 });
            store.accumulate(ia, ga);
        })
    }

    /// GELU activation (tanh approximation).
    pub fn gelu(&self) -> Var {
        let a = self.value();
        let ia = self.id;
        let ac = a.clone();
        self.unary(ops::gelu(&a), move |g, store| {
            let ga = ops::zip_broadcast(g, &ac, |gv, x| gv * ops::gelu_grad_scalar(x));
            store.accumulate(ia, ga);
        })
    }

    /// Matrix multiply `[m,k] × [k,n]`.
    pub fn matmul(&self, other: &Var) -> Var {
        let (a, b) = (self.value(), other.value());
        let (ia, ib) = (self.id, other.id);
        let (ac, bc) = (a.clone(), b.clone());
        self.unary(matmul(&a, &b), move |g, store| {
            store.accumulate(ia, matmul(g, &ops::transpose2(&bc)));
            store.accumulate(ib, matmul(&ops::transpose2(&ac), g));
        })
    }

    /// Batched matrix multiply `[b,m,k] × [b,k,n]`.
    pub fn bmm(&self, other: &Var) -> Var {
        let (a, b) = (self.value(), other.value());
        let (ia, ib) = (self.id, other.id);
        let (ac, bc) = (a.clone(), b.clone());
        self.unary(bmm(&a, &b), move |g, store| {
            store.accumulate(ia, bmm(g, &ops::permute(&bc, &[0, 2, 1])));
            store.accumulate(ib, bmm(&ops::permute(&ac, &[0, 2, 1]), g));
        })
    }

    /// 2-D convolution (see [`conv2d`]).
    pub fn conv2d(&self, weight: &Var, bias: Option<&Var>, spec: Conv2dSpec) -> Var {
        let x = self.value();
        let w = weight.value();
        let b = bias.map(|b| b.value());
        let out = conv2d(&x, &w, b.as_ref(), spec);
        let (ix, iw, ib) = (self.id, weight.id, bias.map(|b| b.id));
        let (xc, wc) = (x.clone(), w.clone());
        self.unary(out, move |g, store| {
            let (gx, gw, gb) = conv2d_backward(&xc, &wc, g, spec, ib.is_some());
            store.accumulate(ix, gx);
            store.accumulate(iw, gw);
            if let (Some(ib), Some(gb)) = (ib, gb) {
                store.accumulate(ib, gb);
            }
        })
    }

    /// 2-D max pooling.
    pub fn maxpool2d(&self, kernel: usize, stride: usize) -> Var {
        let x = self.value();
        let (out, arg) = maxpool2d(&x, kernel, stride);
        let ix = self.id;
        let dims = x.dims().to_vec();
        let n = x.numel();
        self.unary(out, move |g, store| {
            store.accumulate(ix, maxpool2d_backward(g, &arg, n, &dims));
        })
    }

    /// 2-D average pooling.
    pub fn avgpool2d(&self, kernel: usize, stride: usize) -> Var {
        let x = self.value();
        let dims = x.dims().to_vec();
        let ix = self.id;
        self.unary(crate::conv::avgpool2d(&x, kernel, stride), move |g, store| {
            store.accumulate(ix, crate::conv::avgpool2d_backward(g, kernel, stride, &dims));
        })
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Var {
        let x = self.value();
        let out = x.map(f32::exp);
        let ix = self.id;
        let oc = out.clone();
        self.unary(out, move |g, store| {
            store.accumulate(ix, ops::mul(g, &oc));
        })
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self) -> Var {
        let x = self.value();
        let ix = self.id;
        let xc = x.clone();
        self.unary(x.map(f32::ln), move |g, store| {
            store.accumulate(ix, ops::div(g, &xc));
        })
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&self) -> Var {
        let x = self.value();
        let out = x.map(f32::tanh);
        let ix = self.id;
        let oc = out.clone();
        self.unary(out, move |g, store| {
            let ga = ops::zip_broadcast(g, &oc, |gv, t| gv * (1.0 - t * t));
            store.accumulate(ix, ga);
        })
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&self) -> Var {
        let x = self.value();
        let out = x.map(|v| 1.0 / (1.0 + (-v).exp()));
        let ix = self.id;
        let oc = out.clone();
        self.unary(out, move |g, store| {
            let ga = ops::zip_broadcast(g, &oc, |gv, s| gv * s * (1.0 - s));
            store.accumulate(ix, ga);
        })
    }

    /// Elementwise quotient with broadcasting.
    pub fn div(&self, other: &Var) -> Var {
        self.mul(&other.recip())
    }

    /// SiLU / swish activation: `x · sigmoid(x)`.
    pub fn silu(&self) -> Var {
        self.mul(&self.sigmoid())
    }

    /// Global average pooling `[N,C,H,W] → [N,C]`.
    pub fn global_avg_pool(&self) -> Var {
        let x = self.value();
        let (h, w) = (x.dims()[2], x.dims()[3]);
        let ix = self.id;
        self.unary(global_avg_pool(&x), move |g, store| {
            store.accumulate(ix, global_avg_pool_backward(g, h, w));
        })
    }

    /// Reshape (free: gradients reshape back).
    pub fn reshape(&self, shape: impl Into<Shape>) -> Var {
        let x = self.value();
        let old = x.shape().clone();
        let ix = self.id;
        self.unary(x.reshape(shape.into()), move |g, store| {
            store.accumulate(ix, g.reshape(old.clone()));
        })
    }

    /// Dimension permutation (gradient applies the inverse permutation).
    pub fn permute(&self, perm: &[usize]) -> Var {
        let x = self.value();
        let ix = self.id;
        let perm_v = perm.to_vec();
        let mut inv = vec![0usize; perm.len()];
        for (i, &p) in perm.iter().enumerate() {
            inv[p] = i;
        }
        self.unary(ops::permute(&x, &perm_v), move |g, store| {
            store.accumulate(ix, ops::permute(g, &inv));
        })
    }

    /// Softmax over the last dimension.
    pub fn softmax_lastdim(&self) -> Var {
        let x = self.value();
        let s = ops::softmax_lastdim(&x);
        let ix = self.id;
        let sc = s.clone();
        self.unary(s, move |g, store| {
            // ds = (g - sum(g*s, last)) * s, rowwise.
            let cols = sc.dims()[sc.ndim() - 1];
            let mut out = Vec::with_capacity(sc.numel());
            for (grow, srow) in g.as_slice().chunks(cols).zip(sc.as_slice().chunks(cols)) {
                let dot: f32 = grow.iter().zip(srow).map(|(a, b)| a * b).sum();
                out.extend(grow.iter().zip(srow).map(|(gv, sv)| (gv - dot) * sv));
            }
            store.accumulate(ix, Tensor::from_vec(out, sc.shape().clone()));
        })
    }

    /// Mean over the listed axes, keeping them as extent-1 dimensions.
    ///
    /// # Panics
    ///
    /// Panics if any axis is out of range.
    pub fn mean_axes_keepdim(&self, axes: &[usize]) -> Var {
        let x = self.value();
        let mut cur = x.clone();
        let mut count = 1usize;
        for &ax in axes {
            count *= x.dims()[ax];
            cur = ops::sum_axis_keepdim(&cur, ax);
        }
        let out = ops::scale(&cur, 1.0 / count as f32);
        let ix = self.id;
        let in_shape = x.shape().clone();
        self.unary(out, move |g, store| {
            // Broadcast g back to the input shape and divide by count.
            let expanded =
                ops::add(&ops::scale(g, 1.0 / count as f32), &Tensor::zeros(in_shape.clone()));
            store.accumulate(ix, expanded);
        })
    }

    /// Sum of all elements, yielding a scalar.
    pub fn sum_all(&self) -> Var {
        let x = self.value();
        let ix = self.id;
        let shape = x.shape().clone();
        self.unary(Tensor::scalar(x.sum_all()), move |g, store| {
            store.accumulate(ix, Tensor::full(shape.clone(), g.item()));
        })
    }

    /// Mean of all elements, yielding a scalar.
    pub fn mean_all(&self) -> Var {
        let n = self.value().numel() as f32;
        self.sum_all().scale(1.0 / n)
    }

    /// Applies an arbitrary tensor function in the forward pass with a
    /// straight-through (identity) backward pass.
    ///
    /// This is the hook point for number-format emulation during training:
    /// the quantiser runs in the forward pass, gradients flow through
    /// unchanged.
    pub fn apply_ste(&self, f: impl Fn(&Tensor) -> Tensor) -> Var {
        let x = self.value();
        let out = f(&x);
        assert_eq!(out.shape(), x.shape(), "apply_ste function must preserve shape");
        let ix = self.id;
        self.unary(out, move |g, store| {
            store.accumulate(ix, g.clone());
        })
    }

    /// Fused softmax-cross-entropy against integer class targets.
    ///
    /// `self` must be `[N, C]` logits; returns the scalar mean loss.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree or a target is out of range.
    pub fn cross_entropy(&self, targets: &[usize]) -> Var {
        let x = self.value();
        assert_eq!(x.ndim(), 2, "cross_entropy expects [N, C] logits");
        let (n, c) = (x.dims()[0], x.dims()[1]);
        assert_eq!(targets.len(), n, "target count mismatch");
        for &t in targets {
            assert!(t < c, "target {} out of range for {} classes", t, c);
        }
        let logp = ops::log_softmax_lastdim(&x);
        let loss =
            -targets.iter().enumerate().map(|(i, &t)| logp.as_slice()[i * c + t]).sum::<f32>()
                / n as f32;
        let ix = self.id;
        let probs = ops::softmax_lastdim(&x);
        let tv = targets.to_vec();
        self.unary(Tensor::scalar(loss), move |g, store| {
            let gscale = g.item() / n as f32;
            let mut gx = probs.clone();
            for (i, &t) in tv.iter().enumerate() {
                let v = gx.as_slice()[i * c + t];
                gx.as_mut_slice()[i * c + t] = v - 1.0;
            }
            gx.map_inplace(|v| v * gscale);
            store.accumulate(ix, gx);
        })
    }

    /// Runs the backward pass from this (scalar) node and returns all
    /// gradients.
    ///
    /// # Panics
    ///
    /// Panics if called on a tape that was not recording.
    pub fn backward(&self) -> GradStore {
        let inner = self.tape.inner.borrow();
        assert!(inner.recording || !inner.entries.is_empty(), "backward() on a non-recording tape");
        let mut store = GradStore::new(inner.values.len());
        store.accumulate(self.id, Tensor::ones(inner.values[self.id].shape().clone()));
        for entry in inner.entries.iter().rev() {
            let gout = store.grads[entry.output].take();
            if let Some(g) = gout {
                (entry.backward)(&g, &mut store);
                store.grads[entry.output] = Some(g);
            }
        }
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fd_check(
        f: impl Fn(&Tensor) -> f32,
        x: &Tensor,
        analytic: &Tensor,
        eps: f32,
        tol: f32,
        points: &[usize],
    ) {
        for &i in points {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let fd = (f(&xp) - f(&xm)) / (2.0 * eps);
            let got = analytic.as_slice()[i];
            assert!((got - fd).abs() < tol, "grad[{i}] analytic={got} fd={fd}");
        }
    }

    #[test]
    fn add_mul_grads() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0], [2]));
        let y = tape.leaf(Tensor::from_vec(vec![3.0, 4.0], [2]));
        // z = sum(x*y + x)
        let z = x.mul(&y).add(&x).sum_all();
        let g = z.backward();
        assert_eq!(g.get(&x).unwrap().as_slice(), &[4.0, 5.0]); // y + 1
        assert_eq!(g.get(&y).unwrap().as_slice(), &[1.0, 2.0]); // x
    }

    #[test]
    fn broadcast_add_grad_reduces() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::ones([2, 3]));
        let b = tape.leaf(Tensor::zeros([3]));
        let z = x.add(&b).sum_all();
        let g = z.backward();
        assert_eq!(g.get(&b).unwrap().as_slice(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn matmul_grad_finite_difference() {
        let mut rng = StdRng::seed_from_u64(5);
        let a0 = Tensor::randn([3, 4], &mut rng);
        let b0 = Tensor::randn([4, 2], &mut rng);
        let tape = Tape::new();
        let a = tape.leaf(a0.clone());
        let b = tape.leaf(b0.clone());
        let loss = a.matmul(&b).sum_all();
        let g = tape_backward_loss(&loss);
        let ga = g.get(&a).unwrap().clone();
        fd_check(|t| matmul(t, &b0).sum_all(), &a0, &ga, 1e-2, 1e-2, &[0, 5, 11]);
        let gb = g.get(&b).unwrap().clone();
        fd_check(|t| matmul(&a0, t).sum_all(), &b0, &gb, 1e-2, 1e-2, &[0, 3, 7]);
    }

    fn tape_backward_loss(loss: &Var) -> GradStore {
        loss.backward()
    }

    #[test]
    fn relu_grad_masks() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![-1.0, 2.0, -3.0, 4.0], [4]));
        let g = x.relu().sum_all().backward();
        assert_eq!(g.get(&x).unwrap().as_slice(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn softmax_grad_finite_difference() {
        let mut rng = StdRng::seed_from_u64(9);
        let x0 = Tensor::randn([2, 5], &mut rng);
        let tape = Tape::new();
        let x = tape.leaf(x0.clone());
        // Weighted sum to get a non-trivial gradient.
        let wts = Tensor::arange(10).reshape([2, 5]);
        let w = tape.leaf(wts.clone());
        let loss = x.softmax_lastdim().mul(&w).sum_all();
        let g = loss.backward();
        let gx = g.get(&x).unwrap().clone();
        fd_check(
            |t| ops::mul(&ops::softmax_lastdim(t), &wts).sum_all(),
            &x0,
            &gx,
            1e-2,
            1e-2,
            &[0, 3, 7, 9],
        );
    }

    #[test]
    fn cross_entropy_grad_finite_difference() {
        let mut rng = StdRng::seed_from_u64(13);
        let x0 = Tensor::randn([3, 4], &mut rng);
        let targets = vec![0usize, 2, 3];
        let tape = Tape::new();
        let x = tape.leaf(x0.clone());
        let loss = x.cross_entropy(&targets);
        let g = loss.backward();
        let gx = g.get(&x).unwrap().clone();
        let f = |t: &Tensor| {
            let lp = ops::log_softmax_lastdim(t);
            -targets.iter().enumerate().map(|(i, &c)| lp.as_slice()[i * 4 + c]).sum::<f32>() / 3.0
        };
        fd_check(f, &x0, &gx, 1e-2, 1e-2, &[0, 5, 11]);
    }

    #[test]
    fn conv_via_tape_matches_direct_backward() {
        let mut rng = StdRng::seed_from_u64(21);
        let spec = Conv2dSpec::new(3, 1, 1);
        let x0 = Tensor::randn([1, 2, 4, 4], &mut rng);
        let w0 = Tensor::randn([3, 2, 3, 3], &mut rng);
        let tape = Tape::new();
        let x = tape.leaf(x0.clone());
        let w = tape.leaf(w0.clone());
        let loss = x.conv2d(&w, None, spec).sum_all();
        let g = loss.backward();
        let go = Tensor::ones([1, 3, 4, 4]);
        let (gx, gw, _) = conv2d_backward(&x0, &w0, &go, spec, false);
        assert!(g.get(&x).unwrap().allclose(&gx, 1e-5));
        assert!(g.get(&w).unwrap().allclose(&gw, 1e-5));
    }

    #[test]
    fn apply_ste_passes_grad_through() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![0.3, 1.7], [2]));
        // Quantise to integers in forward; STE in backward.
        let y = x.apply_ste(|t| t.map(f32::round));
        assert_eq!(y.value().as_slice(), &[0.0, 2.0]);
        let g = y.sum_all().backward();
        assert_eq!(g.get(&x).unwrap().as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn inference_tape_records_nothing() {
        let tape = Tape::inference();
        let x = tape.leaf(Tensor::ones([4]));
        let _y = x.relu().scale(2.0);
        assert_eq!(tape.inner.borrow().entries.len(), 0);
    }

    #[test]
    fn mean_axes_keepdim_grad() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::arange(12).reshape([2, 2, 3]));
        let m = x.mean_axes_keepdim(&[0, 2]);
        assert_eq!(m.shape().dims(), &[1, 2, 1]);
        let g = m.sum_all().backward();
        // Each input element contributes 1/6 to its group mean.
        let gx = g.get(&x).unwrap();
        assert!(gx.allclose(&Tensor::full([2, 2, 3], 1.0 / 6.0), 1e-6));
    }

    #[test]
    fn permute_reshape_grads_are_inverse() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::arange(6).reshape([2, 3]));
        let y = x.permute(&[1, 0]).reshape([6]);
        let g = y.sum_all().backward();
        assert_eq!(g.get(&x).unwrap().dims(), &[2, 3]);
        assert!(g.get(&x).unwrap().allclose(&Tensor::ones([2, 3]), 1e-6));
    }

    #[test]
    fn elementwise_op_grads_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(33);
        let x0 = {
            // Strictly positive inputs so ln() is well-defined.
            let mut t = Tensor::randn([8], &mut rng);
            t.map_inplace(|v| v.abs() + 0.2);
            t
        };
        type OpPair = (&'static str, fn(&Var) -> Var, fn(f32) -> f32);
        let cases: Vec<OpPair> = vec![
            ("exp", |v| v.exp(), f32::exp),
            ("ln", |v| v.ln(), f32::ln),
            ("tanh", |v| v.tanh(), f32::tanh),
            ("sigmoid", |v| v.sigmoid(), |x| 1.0 / (1.0 + (-x).exp())),
            ("silu", |v| v.silu(), |x| x / (1.0 + (-x).exp())),
            ("sqrt", |v| v.sqrt(), f32::sqrt),
        ];
        for (name, op, scalar) in cases {
            let tape = Tape::new();
            let x = tape.leaf(x0.clone());
            let g = op(&x).sum_all().backward();
            let gx = g.get(&x).unwrap();
            let eps = 1e-3;
            for i in 0..x0.numel() {
                let xv = x0.as_slice()[i];
                let fd = (scalar(xv + eps) - scalar(xv - eps)) / (2.0 * eps);
                assert!(
                    (gx.as_slice()[i] - fd).abs() < 2e-2,
                    "{name}'({xv}) = {} vs fd {}",
                    gx.as_slice()[i],
                    fd
                );
            }
        }
    }

    #[test]
    fn div_grad_matches_finite_difference() {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(vec![3.0, -1.0], [2]));
        let b = tape.leaf(Tensor::from_vec(vec![2.0, 4.0], [2]));
        let g = a.div(&b).sum_all().backward();
        assert!(g.get(&a).unwrap().allclose(&Tensor::from_vec(vec![0.5, 0.25], [2]), 1e-5));
        // d(a/b)/db = -a/b²
        assert!(g.get(&b).unwrap().allclose(&Tensor::from_vec(vec![-0.75, 1.0 / 16.0], [2]), 1e-5));
    }

    #[test]
    fn avgpool_grad_spreads_uniformly() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::arange(16).reshape([1, 1, 4, 4]));
        let y = x.avgpool2d(2, 2);
        assert_eq!(y.value().as_slice(), &[2.5, 4.5, 10.5, 12.5]);
        let g = y.sum_all().backward();
        assert!(g.get(&x).unwrap().allclose(&Tensor::full([1, 1, 4, 4], 0.25), 1e-6));
    }

    #[test]
    fn grad_accumulates_across_reuse() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![3.0], [1]));
        // y = x + x → dy/dx = 2
        let y = x.add(&x).sum_all();
        let g = y.backward();
        assert_eq!(g.get(&x).unwrap().as_slice(), &[2.0]);
    }

    #[test]
    fn second_branch_not_differentiated_has_no_grad() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::ones([2]));
        let y = tape.leaf(Tensor::ones([2]));
        let loss = x.scale(2.0).sum_all();
        let g = loss.backward();
        assert!(g.get(&y).is_none());
    }
}
