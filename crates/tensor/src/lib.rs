#![warn(missing_docs)]

//! # tensor — the FP32 compute-fabric substrate
//!
//! A small, dependency-light dense tensor library providing the "hardware"
//! number system (IEEE-754 `f32`) on top of which goldeneye-rs emulates
//! arbitrary number formats, exactly as the paper emulates formats on top of
//! the GPU's native FP32.
//!
//! Provides:
//!
//! - [`Tensor`]: contiguous row-major `f32` tensors with broadcasting
//!   elementwise ops, reductions, and shape manipulation ([`ops`]);
//! - [`linalg`]: packed-panel register-tiled SGEMM and batched matmul,
//!   parallel over output row panels and bit-exact for every thread count;
//! - [`conv`]: im2col convolution and pooling with explicit backward passes;
//! - [`parallel`]: the intra-op scoped-thread worker pool and its
//!   thread-budget controls ([`parallel::with_threads`]);
//! - [`workspace`]: a thread-local scratch-buffer pool that lets the
//!   kernels reuse im2col/packing buffers across calls;
//! - [`autograd`]: a tape ([`Tape`]/[`Var`]) for reverse-mode
//!   differentiation, including a straight-through-estimator hook
//!   ([`Var::apply_ste`]) so quantisers can participate in training.
//!
//! # Examples
//!
//! ```
//! use tensor::{Tensor, ops};
//! let x = Tensor::from_vec(vec![1.0, -2.0, 3.0], [3]);
//! let y = ops::relu(&x);
//! assert_eq!(y.as_slice(), &[1.0, 0.0, 3.0]);
//! ```

pub mod autograd;
pub mod conv;
pub mod linalg;
pub mod ops;
pub mod parallel;
mod shape;
mod tensor;
pub mod workspace;

pub use autograd::{GradStore, Tape, Var};
pub use conv::Conv2dSpec;
pub use shape::Shape;
pub use tensor::Tensor;
