//! Elementwise, broadcasting, reduction, and shape-manipulation operations.

use crate::shape::Shape;
use crate::tensor::Tensor;

/// Applies a binary operation elementwise with NumPy-style broadcasting.
///
/// # Panics
///
/// Panics if the shapes are not broadcast-compatible.
pub fn zip_broadcast(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
    if a.shape() == b.shape() {
        // Fast path: identical shapes.
        let data = a.as_slice().iter().zip(b.as_slice()).map(|(&x, &y)| f(x, y)).collect();
        return Tensor::from_vec(data, a.shape().clone());
    }
    let out_shape = Shape::broadcast(a.shape(), b.shape()).unwrap_or_else(|| {
        panic!("shapes {:?} and {:?} are not broadcast-compatible", a.shape(), b.shape())
    });
    let n = out_shape.numel();
    let mut out = Vec::with_capacity(n);
    let a_dims = a.dims();
    let b_dims = b.dims();
    let a_strides = a.shape().strides();
    let b_strides = b.shape().strides();
    let nd = out_shape.ndim();
    let mut idx = vec![0usize; nd];
    for _ in 0..n {
        let mut ao = 0;
        let mut bo = 0;
        for (d, &id) in idx.iter().enumerate() {
            if nd - d <= a_dims.len() {
                let ad = d - (nd - a_dims.len());
                if a_dims[ad] != 1 {
                    ao += id * a_strides[ad];
                }
            }
            if nd - d <= b_dims.len() {
                let bd = d - (nd - b_dims.len());
                if b_dims[bd] != 1 {
                    bo += id * b_strides[bd];
                }
            }
        }
        out.push(f(a.as_slice()[ao], b.as_slice()[bo]));
        // Increment the multi-index.
        for (dim, id) in idx.iter_mut().enumerate().rev() {
            *id += 1;
            if *id < out_shape.dim(dim) {
                break;
            }
            *id = 0;
        }
    }
    Tensor::from_vec(out, out_shape)
}

/// Elementwise sum with broadcasting.
pub fn add(a: &Tensor, b: &Tensor) -> Tensor {
    zip_broadcast(a, b, |x, y| x + y)
}

/// Elementwise difference with broadcasting.
pub fn sub(a: &Tensor, b: &Tensor) -> Tensor {
    zip_broadcast(a, b, |x, y| x - y)
}

/// Elementwise product with broadcasting.
pub fn mul(a: &Tensor, b: &Tensor) -> Tensor {
    zip_broadcast(a, b, |x, y| x * y)
}

/// Elementwise quotient with broadcasting.
pub fn div(a: &Tensor, b: &Tensor) -> Tensor {
    zip_broadcast(a, b, |x, y| x / y)
}

/// Multiplies every element by a scalar.
pub fn scale(a: &Tensor, s: f32) -> Tensor {
    a.map(|x| x * s)
}

/// Adds a scalar to every element.
pub fn add_scalar(a: &Tensor, s: f32) -> Tensor {
    a.map(|x| x + s)
}

/// Rectified linear unit: `max(x, 0)`.
pub fn relu(a: &Tensor) -> Tensor {
    a.map(|x| x.max(0.0))
}

/// Gaussian error linear unit (tanh approximation, as used by DeiT/BERT).
pub fn gelu(a: &Tensor) -> Tensor {
    a.map(gelu_scalar)
}

pub(crate) fn gelu_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

/// Derivative of the tanh-approximated GELU.
pub(crate) fn gelu_grad_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let x3 = x * x * x;
    let inner = C * (x + 0.044715 * x3);
    let t = inner.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044715 * x * x)
}

/// Sums over the last `k` dimensions, collapsing them.
///
/// `sum_trailing(x, 1)` on a `[N, C]` tensor gives `[N]`.
///
/// # Panics
///
/// Panics if `k > x.ndim()`.
pub fn sum_trailing(x: &Tensor, k: usize) -> Tensor {
    let nd = x.ndim();
    assert!(k <= nd, "cannot sum {} trailing dims of {:?}", k, x.shape());
    let keep: usize = x.dims()[..nd - k].iter().product::<usize>().max(1);
    let red: usize = x.dims()[nd - k..].iter().product::<usize>().max(1);
    let mut out = vec![0.0f32; keep];
    for (i, chunk) in x.as_slice().chunks(red).enumerate() {
        out[i] = chunk.iter().sum();
    }
    Tensor::from_vec(out, x.dims()[..nd - k].to_vec())
}

/// Means over the last `k` dimensions, collapsing them.
pub fn mean_trailing(x: &Tensor, k: usize) -> Tensor {
    let nd = x.ndim();
    let red: usize = x.dims()[nd - k..].iter().product::<usize>().max(1);
    scale(&sum_trailing(x, k), 1.0 / red as f32)
}

/// Row-wise softmax over the last dimension, numerically stabilised.
pub fn softmax_lastdim(x: &Tensor) -> Tensor {
    let nd = x.ndim();
    assert!(nd >= 1, "softmax requires at least one dimension");
    let cols = x.dims()[nd - 1];
    let mut out = Vec::with_capacity(x.numel());
    for row in x.as_slice().chunks(cols) {
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&v| (v - m).exp()).collect();
        let s: f32 = exps.iter().sum();
        out.extend(exps.iter().map(|e| e / s));
    }
    Tensor::from_vec(out, x.shape().clone())
}

/// Row-wise log-softmax over the last dimension, numerically stabilised.
pub fn log_softmax_lastdim(x: &Tensor) -> Tensor {
    let nd = x.ndim();
    let cols = x.dims()[nd - 1];
    let mut out = Vec::with_capacity(x.numel());
    for row in x.as_slice().chunks(cols) {
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let lse = m + row.iter().map(|&v| (v - m).exp()).sum::<f32>().ln();
        out.extend(row.iter().map(|&v| v - lse));
    }
    Tensor::from_vec(out, x.shape().clone())
}

/// Index of the maximum element in each row of a `[N, C]` tensor.
///
/// # Panics
///
/// Panics if `x` is not 2-dimensional.
pub fn argmax_rows(x: &Tensor) -> Vec<usize> {
    assert_eq!(x.ndim(), 2, "argmax_rows expects [N, C], got {:?}", x.shape());
    let cols = x.dims()[1];
    x.as_slice()
        .chunks(cols)
        .map(|row| {
            row.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0)
        })
        .collect()
}

/// Permutes dimensions: `out[idx] = x[idx[perm]]` in the transposed layout.
///
/// `permute(x, &[1, 0])` is the classic matrix transpose.
///
/// # Panics
///
/// Panics if `perm` is not a permutation of `0..ndim`.
pub fn permute(x: &Tensor, perm: &[usize]) -> Tensor {
    let nd = x.ndim();
    assert_eq!(perm.len(), nd, "permutation arity mismatch for {:?}", x.shape());
    let mut seen = vec![false; nd];
    for &p in perm {
        assert!(p < nd && !seen[p], "invalid permutation {:?}", perm);
        seen[p] = true;
    }
    let old_dims = x.dims();
    let old_strides = x.shape().strides();
    let new_dims: Vec<usize> = perm.iter().map(|&p| old_dims[p]).collect();
    let new_shape = Shape::new(new_dims.clone());
    let n = x.numel();
    let mut out = vec![0.0f32; n];
    let mut idx = vec![0usize; nd];
    for item in out.iter_mut().take(n) {
        let mut src = 0;
        for d in 0..nd {
            src += idx[d] * old_strides[perm[d]];
        }
        *item = x.as_slice()[src];
        for (dim, id) in idx.iter_mut().enumerate().rev() {
            *id += 1;
            if *id < new_dims[dim] {
                break;
            }
            *id = 0;
        }
    }
    Tensor::from_vec(out, new_shape)
}

/// 2-D matrix transpose. Shorthand for `permute(x, &[1, 0])`.
///
/// # Panics
///
/// Panics if `x` is not 2-dimensional.
pub fn transpose2(x: &Tensor) -> Tensor {
    assert_eq!(x.ndim(), 2, "transpose2 expects a matrix, got {:?}", x.shape());
    permute(x, &[1, 0])
}

/// Concatenates tensors along dimension `dim`.
///
/// # Panics
///
/// Panics if shapes disagree outside `dim`, or `parts` is empty.
pub fn concat(parts: &[&Tensor], dim: usize) -> Tensor {
    assert!(!parts.is_empty(), "concat of zero tensors");
    let nd = parts[0].ndim();
    assert!(dim < nd, "concat dim {} out of range", dim);
    let outer: usize = parts[0].dims()[..dim].iter().product::<usize>().max(1);
    let inner: usize = parts[0].dims()[dim + 1..].iter().product::<usize>().max(1);
    let mut cat_dim = 0;
    for p in parts {
        assert_eq!(p.ndim(), nd, "concat rank mismatch");
        for d in 0..nd {
            if d != dim {
                assert_eq!(p.dims()[d], parts[0].dims()[d], "concat shape mismatch at dim {d}");
            }
        }
        cat_dim += p.dims()[dim];
    }
    let mut out_dims = parts[0].dims().to_vec();
    out_dims[dim] = cat_dim;
    let mut out = Vec::with_capacity(outer * cat_dim * inner);
    for o in 0..outer {
        for p in parts {
            let rows = p.dims()[dim];
            let start = o * rows * inner;
            out.extend_from_slice(&p.as_slice()[start..start + rows * inner]);
        }
    }
    Tensor::from_vec(out, out_dims)
}

/// Repeats `x` `n` times along dimension 0: `[B, ...] → [n·B, ...]`, with
/// copy `r` occupying rows `r·B..(r+1)·B` — the contiguous replica layout
/// batched fault trials pack into one forward pass.
///
/// # Panics
///
/// Panics if `n == 0` or `x` has no dimensions.
pub fn tile_batch(x: &Tensor, n: usize) -> Tensor {
    assert!(n >= 1, "tile_batch needs at least one copy");
    assert!(x.ndim() >= 1, "tile_batch needs a batch dimension");
    let src = x.as_slice();
    let mut out = Vec::with_capacity(src.len() * n);
    for _ in 0..n {
        out.extend_from_slice(src);
    }
    let mut dims = x.dims().to_vec();
    dims[0] *= n;
    Tensor::from_vec(out, dims)
}

/// Extracts `x[.., start..start+len, ..]` along dimension `dim`.
///
/// # Panics
///
/// Panics if the slice is out of range.
pub fn narrow(x: &Tensor, dim: usize, start: usize, len: usize) -> Tensor {
    let nd = x.ndim();
    assert!(dim < nd, "narrow dim {} out of range", dim);
    assert!(start + len <= x.dims()[dim], "narrow out of range for {:?}", x.shape());
    let outer: usize = x.dims()[..dim].iter().product::<usize>().max(1);
    let inner: usize = x.dims()[dim + 1..].iter().product::<usize>().max(1);
    let full = x.dims()[dim];
    let mut out = Vec::with_capacity(outer * len * inner);
    for o in 0..outer {
        let base = o * full * inner + start * inner;
        out.extend_from_slice(&x.as_slice()[base..base + len * inner]);
    }
    let mut dims = x.dims().to_vec();
    dims[dim] = len;
    Tensor::from_vec(out, dims)
}

/// Reduces `grad` (shaped like the broadcast output) back to `shape` by
/// summing over broadcast dimensions. This is the adjoint of broadcasting.
pub fn reduce_to_shape(grad: &Tensor, shape: &Shape) -> Tensor {
    if grad.shape() == shape {
        return grad.clone();
    }
    let gnd = grad.ndim();
    let snd = shape.ndim();
    // Sum leading extra dims.
    let mut cur = grad.clone();
    if gnd > snd {
        let lead: usize = grad.dims()[..gnd - snd].iter().product();
        let rest: usize = grad.dims()[gnd - snd..].iter().product::<usize>().max(1);
        let mut out = vec![0.0f32; rest];
        for l in 0..lead {
            for (r, item) in out.iter_mut().enumerate() {
                *item += cur.as_slice()[l * rest + r];
            }
        }
        cur = Tensor::from_vec(out, grad.dims()[gnd - snd..].to_vec());
    }
    // Sum dims where target extent is 1.
    for d in 0..snd {
        if shape.dim(d) == 1 && cur.dim_or(d, 1) != 1 {
            cur = sum_axis_keepdim(&cur, d);
        }
    }
    assert_eq!(cur.shape(), shape, "reduce_to_shape failed to match {:?}", shape);
    cur
}

impl Tensor {
    fn dim_or(&self, d: usize, default: usize) -> usize {
        if d < self.ndim() {
            self.dims()[d]
        } else {
            default
        }
    }
}

/// Sums along axis `d`, keeping the dimension with extent 1.
pub fn sum_axis_keepdim(x: &Tensor, d: usize) -> Tensor {
    let nd = x.ndim();
    assert!(d < nd);
    let outer: usize = x.dims()[..d].iter().product::<usize>().max(1);
    let axis = x.dims()[d];
    let inner: usize = x.dims()[d + 1..].iter().product::<usize>().max(1);
    let mut out = vec![0.0f32; outer * inner];
    for o in 0..outer {
        for a in 0..axis {
            let base = (o * axis + a) * inner;
            for i in 0..inner {
                out[o * inner + i] += x.as_slice()[base + i];
            }
        }
    }
    let mut dims = x.dims().to_vec();
    dims[d] = 1;
    Tensor::from_vec(out, dims)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2(data: Vec<f32>, r: usize, c: usize) -> Tensor {
        Tensor::from_vec(data, [r, c])
    }

    #[test]
    fn add_same_shape() {
        let a = t2(vec![1., 2., 3., 4.], 2, 2);
        let b = t2(vec![10., 20., 30., 40.], 2, 2);
        assert_eq!(add(&a, &b).as_slice(), &[11., 22., 33., 44.]);
    }

    #[test]
    fn add_broadcast_row() {
        let a = t2(vec![1., 2., 3., 4., 5., 6.], 2, 3);
        let b = Tensor::from_vec(vec![10., 20., 30.], [3]);
        assert_eq!(add(&a, &b).as_slice(), &[11., 22., 33., 14., 25., 36.]);
    }

    #[test]
    fn add_broadcast_col() {
        let a = t2(vec![1., 2., 3., 4., 5., 6.], 2, 3);
        let b = Tensor::from_vec(vec![100., 200.], [2, 1]);
        assert_eq!(add(&a, &b).as_slice(), &[101., 102., 103., 204., 205., 206.]);
    }

    #[test]
    #[should_panic(expected = "broadcast-compatible")]
    fn add_incompatible_panics() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4]);
        add(&a, &b);
    }

    #[test]
    fn mul_scalar_tensor() {
        let a = t2(vec![1., 2., 3., 4.], 2, 2);
        let s = Tensor::scalar(2.0);
        assert_eq!(mul(&a, &s).as_slice(), &[2., 4., 6., 8.]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = t2(vec![1., 2., 3., 1000., 1000., 1000.], 2, 3);
        let s = softmax_lastdim(&x);
        let rows: Vec<f32> = s.as_slice().chunks(3).map(|r| r.iter().sum()).collect();
        assert!((rows[0] - 1.0).abs() < 1e-6);
        assert!((rows[1] - 1.0).abs() < 1e-6);
        assert!(s.all_finite(), "softmax must be stable for large inputs");
    }

    #[test]
    fn log_softmax_matches_softmax_log() {
        let x = t2(vec![0.5, -1.0, 2.0, 0.0, 0.0, 0.0], 2, 3);
        let a = log_softmax_lastdim(&x);
        let b = softmax_lastdim(&x).map(f32::ln);
        assert!(a.allclose(&b, 1e-5));
    }

    #[test]
    fn argmax_rows_basic() {
        let x = t2(vec![1., 5., 3., 9., 2., 0.], 2, 3);
        assert_eq!(argmax_rows(&x), vec![1, 0]);
    }

    #[test]
    fn permute_transpose() {
        let x = t2(vec![1., 2., 3., 4., 5., 6.], 2, 3);
        let t = transpose2(&x);
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.as_slice(), &[1., 4., 2., 5., 3., 6.]);
    }

    #[test]
    fn permute_3d() {
        let x = Tensor::arange(24).reshape([2, 3, 4]);
        let p = permute(&x, &[2, 0, 1]);
        assert_eq!(p.dims(), &[4, 2, 3]);
        assert_eq!(p.at(&[1, 0, 2]), x.at(&[0, 2, 1]));
    }

    #[test]
    fn concat_and_narrow_roundtrip() {
        let x = Tensor::arange(12).reshape([2, 6]);
        let a = narrow(&x, 1, 0, 2);
        let b = narrow(&x, 1, 2, 4);
        let back = concat(&[&a, &b], 1);
        assert_eq!(back, x);
    }

    #[test]
    fn concat_dim0() {
        let a = Tensor::arange(4).reshape([2, 2]);
        let b = Tensor::arange(2).reshape([1, 2]);
        let c = concat(&[&a, &b], 0);
        assert_eq!(c.dims(), &[3, 2]);
        assert_eq!(c.as_slice(), &[0., 1., 2., 3., 0., 1.]);
    }

    #[test]
    fn sum_mean_trailing() {
        let x = Tensor::arange(6).reshape([2, 3]);
        assert_eq!(sum_trailing(&x, 1).as_slice(), &[3.0, 12.0]);
        assert_eq!(mean_trailing(&x, 1).as_slice(), &[1.0, 4.0]);
        assert_eq!(sum_trailing(&x, 2).item(), 15.0);
    }

    #[test]
    fn sum_axis_keepdim_middle() {
        let x = Tensor::arange(8).reshape([2, 2, 2]);
        let s = sum_axis_keepdim(&x, 1);
        assert_eq!(s.dims(), &[2, 1, 2]);
        assert_eq!(s.as_slice(), &[2., 4., 10., 12.]);
    }

    #[test]
    fn reduce_to_shape_broadcast_adjoint() {
        let g = Tensor::ones([2, 3]);
        let r = reduce_to_shape(&g, &Shape::new(vec![3]));
        assert_eq!(r.as_slice(), &[2., 2., 2.]);
        let r2 = reduce_to_shape(&g, &Shape::new(vec![2, 1]));
        assert_eq!(r2.as_slice(), &[3., 3.]);
        let r3 = reduce_to_shape(&g, &Shape::scalar());
        assert_eq!(r3.item(), 6.0);
    }

    #[test]
    fn gelu_matches_reference_points() {
        // Reference values from the tanh approximation.
        assert!((gelu_scalar(0.0)).abs() < 1e-7);
        assert!((gelu_scalar(1.0) - 0.841_192).abs() < 1e-3);
        assert!((gelu_scalar(-1.0) + 0.158_808).abs() < 1e-3);
    }

    #[test]
    fn gelu_grad_finite_difference() {
        for &x in &[-2.0f32, -0.5, 0.0, 0.3, 1.7] {
            let eps = 1e-3;
            let fd = (gelu_scalar(x + eps) - gelu_scalar(x - eps)) / (2.0 * eps);
            assert!(
                (gelu_grad_scalar(x) - fd).abs() < 1e-2,
                "gelu'({x}) = {} vs fd {}",
                gelu_grad_scalar(x),
                fd
            );
        }
    }

    #[test]
    fn relu_clamps_negatives() {
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], [3]);
        assert_eq!(relu(&x).as_slice(), &[0.0, 0.0, 2.0]);
    }
}
