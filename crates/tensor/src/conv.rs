//! Convolution and pooling kernels (NCHW layout) with explicit backward
//! passes, built on im2col + GEMM.

use crate::linalg::kernels::{self, MR, NR};
use crate::linalg::{self, sgemm};
use crate::parallel::{self, SendPtr};
use crate::tensor::Tensor;
use crate::workspace;

/// Convolution geometry: square kernel, stride, and zero padding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dSpec {
    /// Kernel height and width.
    pub kernel: usize,
    /// Stride in both directions.
    pub stride: usize,
    /// Zero padding on all four sides.
    pub padding: usize,
}

impl Conv2dSpec {
    /// Creates a spec.
    pub fn new(kernel: usize, stride: usize, padding: usize) -> Self {
        Conv2dSpec { kernel, stride, padding }
    }

    /// Output spatial extent for an input of extent `h`.
    pub fn out_dim(&self, h: usize) -> usize {
        (h + 2 * self.padding - self.kernel) / self.stride + 1
    }
}

/// Unfolds one `[C, H, W]` image into a `[C*K*K, OH*OW]` column matrix.
fn im2col(x: &[f32], c: usize, h: usize, w: usize, spec: Conv2dSpec, cols: &mut [f32]) {
    let k = spec.kernel;
    let (oh, ow) = (spec.out_dim(h), spec.out_dim(w));
    debug_assert_eq!(cols.len(), c * k * k * oh * ow);
    let mut row = 0;
    for ci in 0..c {
        for ki in 0..k {
            for kj in 0..k {
                for oi in 0..oh {
                    let ii = (oi * spec.stride + ki) as isize - spec.padding as isize;
                    let base = row * oh * ow + oi * ow;
                    if ii < 0 || ii >= h as isize {
                        cols[base..base + ow].fill(0.0);
                        continue;
                    }
                    for oj in 0..ow {
                        let jj = (oj * spec.stride + kj) as isize - spec.padding as isize;
                        cols[base + oj] = if jj < 0 || jj >= w as isize {
                            0.0
                        } else {
                            x[ci * h * w + ii as usize * w + jj as usize]
                        };
                    }
                }
                row += 1;
            }
        }
    }
}

/// Folds a `[C*K*K, OH*OW]` column-gradient matrix back into a `[C, H, W]`
/// image gradient (the adjoint of [`im2col`]).
fn col2im(cols: &[f32], c: usize, h: usize, w: usize, spec: Conv2dSpec, x_grad: &mut [f32]) {
    let k = spec.kernel;
    let (oh, ow) = (spec.out_dim(h), spec.out_dim(w));
    let mut row = 0;
    for ci in 0..c {
        for ki in 0..k {
            for kj in 0..k {
                for oi in 0..oh {
                    let ii = (oi * spec.stride + ki) as isize - spec.padding as isize;
                    if ii < 0 || ii >= h as isize {
                        row_skip();
                    } else {
                        for oj in 0..ow {
                            let jj = (oj * spec.stride + kj) as isize - spec.padding as isize;
                            if jj >= 0 && jj < w as isize {
                                x_grad[ci * h * w + ii as usize * w + jj as usize] +=
                                    cols[row * oh * ow + oi * ow + oj];
                            }
                        }
                    }
                }
                row += 1;
            }
        }
    }

    fn row_skip() {}
}

/// Pooled-transient budget for the batched conv pack buffer (f32 elems,
/// 64 MiB): the batch is blocked so `block · panel_elems` stays under it.
const CONV_PACK_BUDGET: usize = 16 << 20;

/// 2-D convolution forward: `x: [N,C,H,W]`, `w: [O,C,K,K]`, optional
/// `bias: [O]` → `[N,O,OH,OW]`.
///
/// Batch-parallel: the weight matrix is packed into `MR`-row panels once,
/// each image's im2col matrix is packed in parallel, and every
/// `(image, weight-panel)` pair becomes one row-panel task on the shared
/// worker pool — the same tasks the SGEMM path uses, so a batch of images
/// scales like one large GEMM. Per-element accumulation order is
/// identical to per-image [`sgemm`] calls, so results are bit-exact for
/// every thread count and dispatched micro-kernel.
///
/// # Panics
///
/// Panics on rank or channel mismatches.
pub fn conv2d(x: &Tensor, w: &Tensor, bias: Option<&Tensor>, spec: Conv2dSpec) -> Tensor {
    assert_eq!(x.ndim(), 4, "conv2d input must be NCHW, got {:?}", x.shape());
    assert_eq!(w.ndim(), 4, "conv2d weight must be OCKK, got {:?}", w.shape());
    let (n, c, h, wd) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    let (o, cw, k, k2) = (w.dims()[0], w.dims()[1], w.dims()[2], w.dims()[3]);
    assert_eq!(c, cw, "conv2d channels: input {:?} vs weight {:?}", x.shape(), w.shape());
    assert_eq!(k, k2, "conv2d kernel must be square");
    assert_eq!(k, spec.kernel, "spec kernel {} != weight kernel {}", spec.kernel, k);
    if let Some(b) = bias {
        assert_eq!(b.dims(), &[o], "conv2d bias must be [{o}]");
    }
    let (oh, ow) = (spec.out_dim(h), spec.out_dim(wd));
    let (ohow, ckk, chw) = (oh * ow, c * k * k, c * h * wd);
    let mut out = vec![0.0f32; n * o * ohow];
    if n == 0 || o == 0 || ohow == 0 || ckk == 0 {
        return Tensor::from_vec(out, [n, o, oh, ow]);
    }

    if linalg::legacy_kernel_enabled() {
        // Historical serial path, kept so `campaign_scaling`'s legacy A/B
        // toggle still measures the whole pre-rewrite pipeline.
        let mut cols = workspace::take(ckk * ohow);
        for ni in 0..n {
            im2col(&x.as_slice()[ni * chw..(ni + 1) * chw], c, h, wd, spec, &mut cols);
            let out_n = &mut out[ni * o * ohow..(ni + 1) * o * ohow];
            sgemm(o, ckk, ohow, w.as_slice(), &cols, out_n);
            add_bias(out_n, bias, 0, o, ohow);
        }
        return Tensor::from_vec(out, [n, o, oh, ow]);
    }

    let kern = kernels::active();
    let npanels = ohow.div_ceil(NR);
    let mpanels = o.div_ceil(MR);
    let panel_elems = npanels * ckk * NR;
    let block = n.min((CONV_PACK_BUDGET / panel_elems).max(1));

    // Pack the weight matrix's row panels once — shared by every image.
    let mut wpack = workspace::take(mpanels * ckk * MR);
    for pi in 0..mpanels {
        let i0 = pi * MR;
        pack_w_panel(ckk, w.as_slice(), i0, MR.min(o - i0), &mut wpack[pi * ckk * MR..]);
    }

    let mut bpack = workspace::take(block * panel_elems);
    for n0 in (0..n).step_by(block) {
        let bn = block.min(n - n0);
        let flops = 2usize.saturating_mul(bn * o).saturating_mul(ckk * ohow);
        let _serial = (flops < linalg::PAR_FLOP_THRESHOLD).then(|| parallel::with_threads(1));
        {
            // Parallel im2col + pack per image: each task owns one
            // image's disjoint `panel_elems` region of the pack buffer.
            let bp = SendPtr(bpack.as_mut_ptr());
            let x_all = x.as_slice();
            parallel::parallel_for(bn, |bi| {
                let ni = n0 + bi;
                let mut cols = workspace::take(ckk * ohow);
                im2col(&x_all[ni * chw..(ni + 1) * chw], c, h, wd, spec, &mut cols);
                // SAFETY: region `bi*panel_elems..(bi+1)*panel_elems` is
                // owned by task bi alone, and `bpack` outlives the scope.
                let dst = unsafe {
                    std::slice::from_raw_parts_mut(bp.get().add(bi * panel_elems), panel_elems)
                };
                pack_image(ckk, ohow, &cols, dst);
            });
        }
        let ob = SendPtr(out.as_mut_ptr());
        let (bpack_ref, wpack_ref, bias_ref) = (&bpack[..], &wpack[..], bias);
        parallel::parallel_for(bn * mpanels, |t| {
            let (bi, pi) = (t / mpanels, t % mpanels);
            let ni = n0 + bi;
            let i0 = pi * MR;
            let rows = MR.min(o - i0);
            // SAFETY: task t owns exactly output-channel rows
            // `i0..i0+rows` of image `ni`; the (bi, pi) → task mapping is
            // a bijection, so regions are disjoint, and `out` outlives
            // the thread scope.
            let orow = unsafe {
                std::slice::from_raw_parts_mut(ob.get().add(ni * o * ohow + i0 * ohow), rows * ohow)
            };
            linalg::row_panel(
                kern,
                ckk,
                ohow,
                rows,
                &wpack_ref[pi * ckk * MR..(pi + 1) * ckk * MR],
                &bpack_ref[bi * panel_elems..(bi + 1) * panel_elems],
                orow,
            );
            add_bias(orow, bias_ref, i0, rows, ohow);
        });
    }
    Tensor::from_vec(out, [n, o, oh, ow])
}

/// Adds `bias[o0 + r]` to each of `rows` output rows of length `ohow`
/// (no-op without a bias), after the GEMM accumulation — the same order
/// as the historical serial path, so results stay bit-identical.
fn add_bias(orow: &mut [f32], bias: Option<&Tensor>, o0: usize, rows: usize, ohow: usize) {
    if let Some(b) = bias {
        for r in 0..rows {
            let bv = b.as_slice()[o0 + r];
            for v in &mut orow[r * ohow..(r + 1) * ohow] {
                *v += bv;
            }
        }
    }
}

/// Packs weight rows `i0..i0+rows` (each of length `ckk`) into one
/// k-major `MR`-row panel (delegates to the SGEMM packer).
fn pack_w_panel(ckk: usize, w: &[f32], i0: usize, rows: usize, dst: &mut [f32]) {
    linalg::pack_a(ckk, w, i0, rows, dst, None);
}

/// Packs one image's `[ckk, ohow]` im2col matrix into `NR`-column panels
/// (delegates to the SGEMM packer; `dst` must be zeroed for the ragged
/// last panel's padding lanes).
fn pack_image(ckk: usize, ohow: usize, cols: &[f32], dst: &mut [f32]) {
    linalg::pack_b(ckk, ohow, cols, dst, None);
}

/// Gradients of [`conv2d`] with respect to input, weight, and bias.
///
/// Returns `(grad_x, grad_w, grad_bias)`; `grad_bias` is `None` iff
/// `has_bias` is false.
pub fn conv2d_backward(
    x: &Tensor,
    w: &Tensor,
    grad_out: &Tensor,
    spec: Conv2dSpec,
    has_bias: bool,
) -> (Tensor, Tensor, Option<Tensor>) {
    let (n, c, h, wd) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    let (o, _, k, _) = (w.dims()[0], w.dims()[1], w.dims()[2], w.dims()[3]);
    let (oh, ow) = (spec.out_dim(h), spec.out_dim(wd));
    assert_eq!(grad_out.dims(), &[n, o, oh, ow], "grad_out shape mismatch");
    let ckk = c * k * k;

    let mut gx = vec![0.0f32; n * c * h * wd];
    let mut gw = vec![0.0f32; o * ckk];
    let mut gb = vec![0.0f32; o];
    let mut cols = workspace::take(ckk * oh * ow);
    let mut col_grad = workspace::take(ckk * oh * ow);
    let mut colst = workspace::take(oh * ow * ckk);

    // Transposed weight [ckk, o] for the input-gradient GEMM.
    let mut wt = workspace::take(ckk * o);
    for oi in 0..o {
        for r in 0..ckk {
            wt[r * o + oi] = w.as_slice()[oi * ckk + r];
        }
    }

    for ni in 0..n {
        let go_n = &grad_out.as_slice()[ni * o * oh * ow..(ni + 1) * o * oh * ow];
        // grad_w += grad_out_n [o, ohow] × cols^T  → accumulate via sgemm on
        // transposed cols: [o, ohow] × [ohow, ckk].
        im2col(&x.as_slice()[ni * c * h * wd..(ni + 1) * c * h * wd], c, h, wd, spec, &mut cols);
        for r in 0..ckk {
            for q in 0..oh * ow {
                colst[q * ckk + r] = cols[r * oh * ow + q];
            }
        }
        sgemm(o, oh * ow, ckk, go_n, &colst, &mut gw);
        // grad_bias
        for oi in 0..o {
            gb[oi] += go_n[oi * oh * ow..(oi + 1) * oh * ow].iter().sum::<f32>();
        }
        // grad_x: col_grad = w^T [ckk, o] × grad_out_n [o, ohow]
        col_grad.fill(0.0);
        sgemm(ckk, o, oh * ow, &wt, go_n, &mut col_grad);
        col2im(&col_grad, c, h, wd, spec, &mut gx[ni * c * h * wd..(ni + 1) * c * h * wd]);
    }
    (
        Tensor::from_vec(gx, [n, c, h, wd]),
        Tensor::from_vec(gw, [o, c, k, k]),
        if has_bias { Some(Tensor::from_vec(gb, [o])) } else { None },
    )
}

/// 2-D max pooling forward. Returns the pooled tensor and the flat argmax
/// index (into the input) of each output element, for the backward pass.
pub fn maxpool2d(x: &Tensor, kernel: usize, stride: usize) -> (Tensor, Vec<usize>) {
    let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    let oh = (h - kernel) / stride + 1;
    let ow = (w - kernel) / stride + 1;
    let mut out = Vec::with_capacity(n * c * oh * ow);
    let mut arg = Vec::with_capacity(n * c * oh * ow);
    for ni in 0..n {
        for ci in 0..c {
            let plane = &x.as_slice()[(ni * c + ci) * h * w..(ni * c + ci + 1) * h * w];
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0;
                    for ki in 0..kernel {
                        for kj in 0..kernel {
                            let ii = oi * stride + ki;
                            let jj = oj * stride + kj;
                            let v = plane[ii * w + jj];
                            if v > best {
                                best = v;
                                best_idx = (ni * c + ci) * h * w + ii * w + jj;
                            }
                        }
                    }
                    out.push(best);
                    arg.push(best_idx);
                }
            }
        }
    }
    (Tensor::from_vec(out, [n, c, oh, ow]), arg)
}

/// Backward of [`maxpool2d`]: routes each output gradient to its argmax.
pub fn maxpool2d_backward(
    grad_out: &Tensor,
    argmax: &[usize],
    input_numel: usize,
    input_dims: &[usize],
) -> Tensor {
    let mut gx = vec![0.0f32; input_numel];
    for (g, &i) in grad_out.as_slice().iter().zip(argmax) {
        gx[i] += g;
    }
    Tensor::from_vec(gx, input_dims.to_vec())
}

/// 2-D average pooling forward (`[N,C,H,W]`, non-overlapping windows when
/// `stride == kernel`).
pub fn avgpool2d(x: &Tensor, kernel: usize, stride: usize) -> Tensor {
    let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    let oh = (h - kernel) / stride + 1;
    let ow = (w - kernel) / stride + 1;
    let norm = (kernel * kernel) as f32;
    let mut out = Vec::with_capacity(n * c * oh * ow);
    for ni in 0..n {
        for ci in 0..c {
            let plane = &x.as_slice()[(ni * c + ci) * h * w..(ni * c + ci + 1) * h * w];
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut acc = 0.0;
                    for ki in 0..kernel {
                        for kj in 0..kernel {
                            acc += plane[(oi * stride + ki) * w + (oj * stride + kj)];
                        }
                    }
                    out.push(acc / norm);
                }
            }
        }
    }
    Tensor::from_vec(out, [n, c, oh, ow])
}

/// Backward of [`avgpool2d`]: spreads each output gradient uniformly over
/// its window.
pub fn avgpool2d_backward(
    grad_out: &Tensor,
    kernel: usize,
    stride: usize,
    input_dims: &[usize],
) -> Tensor {
    let (n, c, h, w) = (input_dims[0], input_dims[1], input_dims[2], input_dims[3]);
    let (oh, ow) = (grad_out.dims()[2], grad_out.dims()[3]);
    let norm = (kernel * kernel) as f32;
    let mut gx = vec![0.0f32; n * c * h * w];
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            for oi in 0..oh {
                for oj in 0..ow {
                    let g = grad_out.at(&[ni, ci, oi, oj]) / norm;
                    for ki in 0..kernel {
                        for kj in 0..kernel {
                            gx[base + (oi * stride + ki) * w + (oj * stride + kj)] += g;
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(gx, input_dims.to_vec())
}

/// Global average pooling: `[N,C,H,W] → [N,C]`.
pub fn global_avg_pool(x: &Tensor) -> Tensor {
    let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    let hw = (h * w) as f32;
    let mut out = Vec::with_capacity(n * c);
    for chunk in x.as_slice().chunks(h * w) {
        out.push(chunk.iter().sum::<f32>() / hw);
    }
    Tensor::from_vec(out, [n, c])
}

/// Backward of [`global_avg_pool`].
pub fn global_avg_pool_backward(grad_out: &Tensor, h: usize, w: usize) -> Tensor {
    let (n, c) = (grad_out.dims()[0], grad_out.dims()[1]);
    let hw = (h * w) as f32;
    let mut gx = Vec::with_capacity(n * c * h * w);
    for &g in grad_out.as_slice() {
        let v = g / hw;
        gx.extend(std::iter::repeat_n(v, h * w));
    }
    Tensor::from_vec(gx, [n, c, h, w])
}

/// Naive direct convolution used by tests to validate the im2col path.
pub fn conv2d_naive(x: &Tensor, w: &Tensor, bias: Option<&Tensor>, spec: Conv2dSpec) -> Tensor {
    let (n, c, h, wd) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    let (o, _, k, _) = (w.dims()[0], w.dims()[1], w.dims()[2], w.dims()[3]);
    let (oh, ow) = (spec.out_dim(h), spec.out_dim(wd));
    let mut out = vec![0.0f32; n * o * oh * ow];
    for ni in 0..n {
        for oi in 0..o {
            for y in 0..oh {
                for xo in 0..ow {
                    let mut acc = bias.map(|b| b.as_slice()[oi]).unwrap_or(0.0);
                    for ci in 0..c {
                        for ki in 0..k {
                            for kj in 0..k {
                                let ii = (y * spec.stride + ki) as isize - spec.padding as isize;
                                let jj = (xo * spec.stride + kj) as isize - spec.padding as isize;
                                if ii >= 0 && ii < h as isize && jj >= 0 && jj < wd as isize {
                                    acc += x.at(&[ni, ci, ii as usize, jj as usize])
                                        * w.at(&[oi, ci, ki, kj]);
                                }
                            }
                        }
                    }
                    out[((ni * o + oi) * oh + y) * ow + xo] = acc;
                }
            }
        }
    }
    Tensor::from_vec(out, [n, o, oh, ow])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn conv_out_dim() {
        let s = Conv2dSpec::new(3, 1, 1);
        assert_eq!(s.out_dim(32), 32);
        let s2 = Conv2dSpec::new(3, 2, 1);
        assert_eq!(s2.out_dim(32), 16);
        let s3 = Conv2dSpec::new(1, 1, 0);
        assert_eq!(s3.out_dim(7), 7);
    }

    #[test]
    fn conv2d_matches_naive() {
        let mut rng = StdRng::seed_from_u64(3);
        for &(c, o, h, k, s, p) in
            &[(1, 1, 5, 3, 1, 1), (3, 4, 8, 3, 2, 1), (2, 2, 6, 1, 1, 0), (3, 5, 7, 5, 2, 2)]
        {
            let spec = Conv2dSpec::new(k, s, p);
            let x = Tensor::randn([2, c, h, h], &mut rng);
            let w = Tensor::randn([o, c, k, k], &mut rng);
            let b = Tensor::randn([o], &mut rng);
            let fast = conv2d(&x, &w, Some(&b), spec);
            let slow = conv2d_naive(&x, &w, Some(&b), spec);
            assert!(
                fast.allclose(&slow, 1e-4),
                "conv mismatch at c={c},o={o},h={h},k={k},s={s},p={p}"
            );
        }
    }

    /// The batched (image × weight-panel) task grid must be bit-identical
    /// to itself across thread counts and dispatched micro-kernels — same
    /// contract as the SGEMM it reuses.
    #[test]
    fn conv2d_bit_identical_across_threads_and_kernels() {
        use crate::parallel::with_threads;
        let mut rng = StdRng::seed_from_u64(17);
        let spec = Conv2dSpec::new(3, 1, 1);
        let x = Tensor::randn([5, 3, 9, 9], &mut rng);
        let w = Tensor::randn([6, 3, 3, 3], &mut rng);
        let b = Tensor::randn([6], &mut rng);
        let reference = {
            let _g = with_threads(1);
            conv2d(&x, &w, Some(&b), spec)
        };
        for kern in kernels::supported_kernels() {
            kernels::force(Some(kern));
            for threads in [1usize, 2, 8] {
                let _g = with_threads(threads);
                let got = conv2d(&x, &w, Some(&b), spec);
                for (i, (a, r)) in got.as_slice().iter().zip(reference.as_slice()).enumerate() {
                    assert_eq!(a.to_bits(), r.to_bits(), "conv {kern} t={threads} diverges at {i}");
                }
            }
        }
        kernels::force(None);
    }

    #[test]
    fn conv2d_identity_kernel() {
        // A 1x1 kernel of value 1 with a single channel is the identity.
        let x = Tensor::arange(16).reshape([1, 1, 4, 4]);
        let w = Tensor::ones([1, 1, 1, 1]);
        let y = conv2d(&x, &w, None, Conv2dSpec::new(1, 1, 0));
        assert_eq!(y.as_slice(), x.as_slice());
    }

    /// Finite-difference check of all three conv gradients.
    #[test]
    fn conv2d_backward_finite_difference() {
        let mut rng = StdRng::seed_from_u64(11);
        let spec = Conv2dSpec::new(3, 1, 1);
        let x = Tensor::randn([1, 2, 4, 4], &mut rng);
        let w = Tensor::randn([2, 2, 3, 3], &mut rng);
        let b = Tensor::randn([2], &mut rng);
        // Loss = sum(conv(x, w, b)); grad_out = ones.
        let y = conv2d(&x, &w, Some(&b), spec);
        let go = Tensor::ones(y.shape().clone());
        let (gx, gw, gb) = conv2d_backward(&x, &w, &go, spec, true);
        let eps = 1e-2;
        let loss = |x: &Tensor, w: &Tensor, b: &Tensor| conv2d(x, w, Some(b), spec).sum_all();
        for i in [0usize, 7, 15, 31] {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let fd = (loss(&xp, &w, &b) - loss(&xm, &w, &b)) / (2.0 * eps);
            assert!((gx.as_slice()[i] - fd).abs() < 1e-2, "gx[{i}]={} fd={}", gx.as_slice()[i], fd);
        }
        for i in [0usize, 9, 17, 35] {
            let mut wp = w.clone();
            wp.as_mut_slice()[i] += eps;
            let mut wm = w.clone();
            wm.as_mut_slice()[i] -= eps;
            let fd = (loss(&x, &wp, &b) - loss(&x, &wm, &b)) / (2.0 * eps);
            assert!((gw.as_slice()[i] - fd).abs() < 2e-2, "gw[{i}]={} fd={}", gw.as_slice()[i], fd);
        }
        let gb = gb.unwrap();
        for i in 0..2 {
            let mut bp = b.clone();
            bp.as_mut_slice()[i] += eps;
            let mut bm = b.clone();
            bm.as_mut_slice()[i] -= eps;
            let fd = (loss(&x, &w, &bp) - loss(&x, &w, &bm)) / (2.0 * eps);
            assert!((gb.as_slice()[i] - fd).abs() < 1e-2);
        }
    }

    #[test]
    fn maxpool_forward_and_backward() {
        let x = Tensor::from_vec(
            vec![
                1., 2., 3., 4., //
                5., 6., 7., 8., //
                9., 10., 11., 12., //
                13., 14., 15., 16.,
            ],
            [1, 1, 4, 4],
        );
        let (y, arg) = maxpool2d(&x, 2, 2);
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[6., 8., 14., 16.]);
        let go = Tensor::ones([1, 1, 2, 2]);
        let gx = maxpool2d_backward(&go, &arg, 16, &[1, 1, 4, 4]);
        assert_eq!(gx.at(&[0, 0, 1, 1]), 1.0);
        assert_eq!(gx.at(&[0, 0, 0, 0]), 0.0);
        assert_eq!(gx.sum_all(), 4.0);
    }

    #[test]
    fn global_avg_pool_and_backward() {
        let x = Tensor::arange(8).reshape([1, 2, 2, 2]);
        let y = global_avg_pool(&x);
        assert_eq!(y.dims(), &[1, 2]);
        assert_eq!(y.as_slice(), &[1.5, 5.5]);
        let go = Tensor::from_vec(vec![4.0, 8.0], [1, 2]);
        let gx = global_avg_pool_backward(&go, 2, 2);
        assert_eq!(gx.as_slice(), &[1., 1., 1., 1., 2., 2., 2., 2.]);
    }

    #[test]
    fn conv2d_stride2_downsamples() {
        let x = Tensor::ones([1, 1, 8, 8]);
        let w = Tensor::ones([1, 1, 3, 3]);
        let y = conv2d(&x, &w, None, Conv2dSpec::new(3, 2, 1));
        assert_eq!(y.dims(), &[1, 1, 4, 4]);
        // Interior output (away from padding) sums the full 3x3 window.
        assert_eq!(y.at(&[0, 0, 1, 1]), 9.0);
        // Top-left touches padding: only 2x2 of the window is inside.
        assert_eq!(y.at(&[0, 0, 0, 0]), 4.0);
    }
}
