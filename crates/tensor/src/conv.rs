//! Convolution and pooling kernels (NCHW layout) with explicit backward
//! passes, built on im2col + GEMM.

use crate::linalg::sgemm;
use crate::tensor::Tensor;
use crate::workspace;

/// Convolution geometry: square kernel, stride, and zero padding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dSpec {
    /// Kernel height and width.
    pub kernel: usize,
    /// Stride in both directions.
    pub stride: usize,
    /// Zero padding on all four sides.
    pub padding: usize,
}

impl Conv2dSpec {
    /// Creates a spec.
    pub fn new(kernel: usize, stride: usize, padding: usize) -> Self {
        Conv2dSpec { kernel, stride, padding }
    }

    /// Output spatial extent for an input of extent `h`.
    pub fn out_dim(&self, h: usize) -> usize {
        (h + 2 * self.padding - self.kernel) / self.stride + 1
    }
}

/// Unfolds one `[C, H, W]` image into a `[C*K*K, OH*OW]` column matrix.
fn im2col(x: &[f32], c: usize, h: usize, w: usize, spec: Conv2dSpec, cols: &mut [f32]) {
    let k = spec.kernel;
    let (oh, ow) = (spec.out_dim(h), spec.out_dim(w));
    debug_assert_eq!(cols.len(), c * k * k * oh * ow);
    let mut row = 0;
    for ci in 0..c {
        for ki in 0..k {
            for kj in 0..k {
                for oi in 0..oh {
                    let ii = (oi * spec.stride + ki) as isize - spec.padding as isize;
                    let base = row * oh * ow + oi * ow;
                    if ii < 0 || ii >= h as isize {
                        cols[base..base + ow].fill(0.0);
                        continue;
                    }
                    for oj in 0..ow {
                        let jj = (oj * spec.stride + kj) as isize - spec.padding as isize;
                        cols[base + oj] = if jj < 0 || jj >= w as isize {
                            0.0
                        } else {
                            x[ci * h * w + ii as usize * w + jj as usize]
                        };
                    }
                }
                row += 1;
            }
        }
    }
}

/// Folds a `[C*K*K, OH*OW]` column-gradient matrix back into a `[C, H, W]`
/// image gradient (the adjoint of [`im2col`]).
fn col2im(cols: &[f32], c: usize, h: usize, w: usize, spec: Conv2dSpec, x_grad: &mut [f32]) {
    let k = spec.kernel;
    let (oh, ow) = (spec.out_dim(h), spec.out_dim(w));
    let mut row = 0;
    for ci in 0..c {
        for ki in 0..k {
            for kj in 0..k {
                for oi in 0..oh {
                    let ii = (oi * spec.stride + ki) as isize - spec.padding as isize;
                    if ii < 0 || ii >= h as isize {
                        row_skip();
                    } else {
                        for oj in 0..ow {
                            let jj = (oj * spec.stride + kj) as isize - spec.padding as isize;
                            if jj >= 0 && jj < w as isize {
                                x_grad[ci * h * w + ii as usize * w + jj as usize] +=
                                    cols[row * oh * ow + oi * ow + oj];
                            }
                        }
                    }
                }
                row += 1;
            }
        }
    }

    fn row_skip() {}
}

/// 2-D convolution forward: `x: [N,C,H,W]`, `w: [O,C,K,K]`, optional
/// `bias: [O]` → `[N,O,OH,OW]`.
///
/// # Panics
///
/// Panics on rank or channel mismatches.
pub fn conv2d(x: &Tensor, w: &Tensor, bias: Option<&Tensor>, spec: Conv2dSpec) -> Tensor {
    assert_eq!(x.ndim(), 4, "conv2d input must be NCHW, got {:?}", x.shape());
    assert_eq!(w.ndim(), 4, "conv2d weight must be OCKK, got {:?}", w.shape());
    let (n, c, h, wd) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    let (o, cw, k, k2) = (w.dims()[0], w.dims()[1], w.dims()[2], w.dims()[3]);
    assert_eq!(c, cw, "conv2d channels: input {:?} vs weight {:?}", x.shape(), w.shape());
    assert_eq!(k, k2, "conv2d kernel must be square");
    assert_eq!(k, spec.kernel, "spec kernel {} != weight kernel {}", spec.kernel, k);
    if let Some(b) = bias {
        assert_eq!(b.dims(), &[o], "conv2d bias must be [{o}]");
    }
    let (oh, ow) = (spec.out_dim(h), spec.out_dim(wd));
    let ckk = c * k * k;
    // The im2col matrix is the dominant transient; borrow it from the
    // thread-local pool so back-to-back forwards (the campaign hot loop)
    // stop hitting the allocator.
    let mut cols = workspace::take(ckk * oh * ow);
    let mut out = vec![0.0f32; n * o * oh * ow];
    for ni in 0..n {
        im2col(&x.as_slice()[ni * c * h * wd..(ni + 1) * c * h * wd], c, h, wd, spec, &mut cols);
        let out_n = &mut out[ni * o * oh * ow..(ni + 1) * o * oh * ow];
        sgemm(o, ckk, oh * ow, w.as_slice(), &cols, out_n);
        if let Some(b) = bias {
            for oi in 0..o {
                let bv = b.as_slice()[oi];
                for v in &mut out_n[oi * oh * ow..(oi + 1) * oh * ow] {
                    *v += bv;
                }
            }
        }
    }
    Tensor::from_vec(out, [n, o, oh, ow])
}

/// Gradients of [`conv2d`] with respect to input, weight, and bias.
///
/// Returns `(grad_x, grad_w, grad_bias)`; `grad_bias` is `None` iff
/// `has_bias` is false.
pub fn conv2d_backward(
    x: &Tensor,
    w: &Tensor,
    grad_out: &Tensor,
    spec: Conv2dSpec,
    has_bias: bool,
) -> (Tensor, Tensor, Option<Tensor>) {
    let (n, c, h, wd) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    let (o, _, k, _) = (w.dims()[0], w.dims()[1], w.dims()[2], w.dims()[3]);
    let (oh, ow) = (spec.out_dim(h), spec.out_dim(wd));
    assert_eq!(grad_out.dims(), &[n, o, oh, ow], "grad_out shape mismatch");
    let ckk = c * k * k;

    let mut gx = vec![0.0f32; n * c * h * wd];
    let mut gw = vec![0.0f32; o * ckk];
    let mut gb = vec![0.0f32; o];
    let mut cols = workspace::take(ckk * oh * ow);
    let mut col_grad = workspace::take(ckk * oh * ow);
    let mut colst = workspace::take(oh * ow * ckk);

    // Transposed weight [ckk, o] for the input-gradient GEMM.
    let mut wt = workspace::take(ckk * o);
    for oi in 0..o {
        for r in 0..ckk {
            wt[r * o + oi] = w.as_slice()[oi * ckk + r];
        }
    }

    for ni in 0..n {
        let go_n = &grad_out.as_slice()[ni * o * oh * ow..(ni + 1) * o * oh * ow];
        // grad_w += grad_out_n [o, ohow] × cols^T  → accumulate via sgemm on
        // transposed cols: [o, ohow] × [ohow, ckk].
        im2col(&x.as_slice()[ni * c * h * wd..(ni + 1) * c * h * wd], c, h, wd, spec, &mut cols);
        for r in 0..ckk {
            for q in 0..oh * ow {
                colst[q * ckk + r] = cols[r * oh * ow + q];
            }
        }
        sgemm(o, oh * ow, ckk, go_n, &colst, &mut gw);
        // grad_bias
        for oi in 0..o {
            gb[oi] += go_n[oi * oh * ow..(oi + 1) * oh * ow].iter().sum::<f32>();
        }
        // grad_x: col_grad = w^T [ckk, o] × grad_out_n [o, ohow]
        col_grad.fill(0.0);
        sgemm(ckk, o, oh * ow, &wt, go_n, &mut col_grad);
        col2im(&col_grad, c, h, wd, spec, &mut gx[ni * c * h * wd..(ni + 1) * c * h * wd]);
    }
    (
        Tensor::from_vec(gx, [n, c, h, wd]),
        Tensor::from_vec(gw, [o, c, k, k]),
        if has_bias { Some(Tensor::from_vec(gb, [o])) } else { None },
    )
}

/// 2-D max pooling forward. Returns the pooled tensor and the flat argmax
/// index (into the input) of each output element, for the backward pass.
pub fn maxpool2d(x: &Tensor, kernel: usize, stride: usize) -> (Tensor, Vec<usize>) {
    let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    let oh = (h - kernel) / stride + 1;
    let ow = (w - kernel) / stride + 1;
    let mut out = Vec::with_capacity(n * c * oh * ow);
    let mut arg = Vec::with_capacity(n * c * oh * ow);
    for ni in 0..n {
        for ci in 0..c {
            let plane = &x.as_slice()[(ni * c + ci) * h * w..(ni * c + ci + 1) * h * w];
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0;
                    for ki in 0..kernel {
                        for kj in 0..kernel {
                            let ii = oi * stride + ki;
                            let jj = oj * stride + kj;
                            let v = plane[ii * w + jj];
                            if v > best {
                                best = v;
                                best_idx = (ni * c + ci) * h * w + ii * w + jj;
                            }
                        }
                    }
                    out.push(best);
                    arg.push(best_idx);
                }
            }
        }
    }
    (Tensor::from_vec(out, [n, c, oh, ow]), arg)
}

/// Backward of [`maxpool2d`]: routes each output gradient to its argmax.
pub fn maxpool2d_backward(
    grad_out: &Tensor,
    argmax: &[usize],
    input_numel: usize,
    input_dims: &[usize],
) -> Tensor {
    let mut gx = vec![0.0f32; input_numel];
    for (g, &i) in grad_out.as_slice().iter().zip(argmax) {
        gx[i] += g;
    }
    Tensor::from_vec(gx, input_dims.to_vec())
}

/// 2-D average pooling forward (`[N,C,H,W]`, non-overlapping windows when
/// `stride == kernel`).
pub fn avgpool2d(x: &Tensor, kernel: usize, stride: usize) -> Tensor {
    let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    let oh = (h - kernel) / stride + 1;
    let ow = (w - kernel) / stride + 1;
    let norm = (kernel * kernel) as f32;
    let mut out = Vec::with_capacity(n * c * oh * ow);
    for ni in 0..n {
        for ci in 0..c {
            let plane = &x.as_slice()[(ni * c + ci) * h * w..(ni * c + ci + 1) * h * w];
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut acc = 0.0;
                    for ki in 0..kernel {
                        for kj in 0..kernel {
                            acc += plane[(oi * stride + ki) * w + (oj * stride + kj)];
                        }
                    }
                    out.push(acc / norm);
                }
            }
        }
    }
    Tensor::from_vec(out, [n, c, oh, ow])
}

/// Backward of [`avgpool2d`]: spreads each output gradient uniformly over
/// its window.
pub fn avgpool2d_backward(
    grad_out: &Tensor,
    kernel: usize,
    stride: usize,
    input_dims: &[usize],
) -> Tensor {
    let (n, c, h, w) = (input_dims[0], input_dims[1], input_dims[2], input_dims[3]);
    let (oh, ow) = (grad_out.dims()[2], grad_out.dims()[3]);
    let norm = (kernel * kernel) as f32;
    let mut gx = vec![0.0f32; n * c * h * w];
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            for oi in 0..oh {
                for oj in 0..ow {
                    let g = grad_out.at(&[ni, ci, oi, oj]) / norm;
                    for ki in 0..kernel {
                        for kj in 0..kernel {
                            gx[base + (oi * stride + ki) * w + (oj * stride + kj)] += g;
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(gx, input_dims.to_vec())
}

/// Global average pooling: `[N,C,H,W] → [N,C]`.
pub fn global_avg_pool(x: &Tensor) -> Tensor {
    let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    let hw = (h * w) as f32;
    let mut out = Vec::with_capacity(n * c);
    for chunk in x.as_slice().chunks(h * w) {
        out.push(chunk.iter().sum::<f32>() / hw);
    }
    Tensor::from_vec(out, [n, c])
}

/// Backward of [`global_avg_pool`].
pub fn global_avg_pool_backward(grad_out: &Tensor, h: usize, w: usize) -> Tensor {
    let (n, c) = (grad_out.dims()[0], grad_out.dims()[1]);
    let hw = (h * w) as f32;
    let mut gx = Vec::with_capacity(n * c * h * w);
    for &g in grad_out.as_slice() {
        let v = g / hw;
        gx.extend(std::iter::repeat_n(v, h * w));
    }
    Tensor::from_vec(gx, [n, c, h, w])
}

/// Naive direct convolution used by tests to validate the im2col path.
pub fn conv2d_naive(x: &Tensor, w: &Tensor, bias: Option<&Tensor>, spec: Conv2dSpec) -> Tensor {
    let (n, c, h, wd) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    let (o, _, k, _) = (w.dims()[0], w.dims()[1], w.dims()[2], w.dims()[3]);
    let (oh, ow) = (spec.out_dim(h), spec.out_dim(wd));
    let mut out = vec![0.0f32; n * o * oh * ow];
    for ni in 0..n {
        for oi in 0..o {
            for y in 0..oh {
                for xo in 0..ow {
                    let mut acc = bias.map(|b| b.as_slice()[oi]).unwrap_or(0.0);
                    for ci in 0..c {
                        for ki in 0..k {
                            for kj in 0..k {
                                let ii = (y * spec.stride + ki) as isize - spec.padding as isize;
                                let jj = (xo * spec.stride + kj) as isize - spec.padding as isize;
                                if ii >= 0 && ii < h as isize && jj >= 0 && jj < wd as isize {
                                    acc += x.at(&[ni, ci, ii as usize, jj as usize])
                                        * w.at(&[oi, ci, ki, kj]);
                                }
                            }
                        }
                    }
                    out[((ni * o + oi) * oh + y) * ow + xo] = acc;
                }
            }
        }
    }
    Tensor::from_vec(out, [n, o, oh, ow])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn conv_out_dim() {
        let s = Conv2dSpec::new(3, 1, 1);
        assert_eq!(s.out_dim(32), 32);
        let s2 = Conv2dSpec::new(3, 2, 1);
        assert_eq!(s2.out_dim(32), 16);
        let s3 = Conv2dSpec::new(1, 1, 0);
        assert_eq!(s3.out_dim(7), 7);
    }

    #[test]
    fn conv2d_matches_naive() {
        let mut rng = StdRng::seed_from_u64(3);
        for &(c, o, h, k, s, p) in
            &[(1, 1, 5, 3, 1, 1), (3, 4, 8, 3, 2, 1), (2, 2, 6, 1, 1, 0), (3, 5, 7, 5, 2, 2)]
        {
            let spec = Conv2dSpec::new(k, s, p);
            let x = Tensor::randn([2, c, h, h], &mut rng);
            let w = Tensor::randn([o, c, k, k], &mut rng);
            let b = Tensor::randn([o], &mut rng);
            let fast = conv2d(&x, &w, Some(&b), spec);
            let slow = conv2d_naive(&x, &w, Some(&b), spec);
            assert!(
                fast.allclose(&slow, 1e-4),
                "conv mismatch at c={c},o={o},h={h},k={k},s={s},p={p}"
            );
        }
    }

    #[test]
    fn conv2d_identity_kernel() {
        // A 1x1 kernel of value 1 with a single channel is the identity.
        let x = Tensor::arange(16).reshape([1, 1, 4, 4]);
        let w = Tensor::ones([1, 1, 1, 1]);
        let y = conv2d(&x, &w, None, Conv2dSpec::new(1, 1, 0));
        assert_eq!(y.as_slice(), x.as_slice());
    }

    /// Finite-difference check of all three conv gradients.
    #[test]
    fn conv2d_backward_finite_difference() {
        let mut rng = StdRng::seed_from_u64(11);
        let spec = Conv2dSpec::new(3, 1, 1);
        let x = Tensor::randn([1, 2, 4, 4], &mut rng);
        let w = Tensor::randn([2, 2, 3, 3], &mut rng);
        let b = Tensor::randn([2], &mut rng);
        // Loss = sum(conv(x, w, b)); grad_out = ones.
        let y = conv2d(&x, &w, Some(&b), spec);
        let go = Tensor::ones(y.shape().clone());
        let (gx, gw, gb) = conv2d_backward(&x, &w, &go, spec, true);
        let eps = 1e-2;
        let loss = |x: &Tensor, w: &Tensor, b: &Tensor| conv2d(x, w, Some(b), spec).sum_all();
        for i in [0usize, 7, 15, 31] {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let fd = (loss(&xp, &w, &b) - loss(&xm, &w, &b)) / (2.0 * eps);
            assert!((gx.as_slice()[i] - fd).abs() < 1e-2, "gx[{i}]={} fd={}", gx.as_slice()[i], fd);
        }
        for i in [0usize, 9, 17, 35] {
            let mut wp = w.clone();
            wp.as_mut_slice()[i] += eps;
            let mut wm = w.clone();
            wm.as_mut_slice()[i] -= eps;
            let fd = (loss(&x, &wp, &b) - loss(&x, &wm, &b)) / (2.0 * eps);
            assert!((gw.as_slice()[i] - fd).abs() < 2e-2, "gw[{i}]={} fd={}", gw.as_slice()[i], fd);
        }
        let gb = gb.unwrap();
        for i in 0..2 {
            let mut bp = b.clone();
            bp.as_mut_slice()[i] += eps;
            let mut bm = b.clone();
            bm.as_mut_slice()[i] -= eps;
            let fd = (loss(&x, &w, &bp) - loss(&x, &w, &bm)) / (2.0 * eps);
            assert!((gb.as_slice()[i] - fd).abs() < 1e-2);
        }
    }

    #[test]
    fn maxpool_forward_and_backward() {
        let x = Tensor::from_vec(
            vec![
                1., 2., 3., 4., //
                5., 6., 7., 8., //
                9., 10., 11., 12., //
                13., 14., 15., 16.,
            ],
            [1, 1, 4, 4],
        );
        let (y, arg) = maxpool2d(&x, 2, 2);
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[6., 8., 14., 16.]);
        let go = Tensor::ones([1, 1, 2, 2]);
        let gx = maxpool2d_backward(&go, &arg, 16, &[1, 1, 4, 4]);
        assert_eq!(gx.at(&[0, 0, 1, 1]), 1.0);
        assert_eq!(gx.at(&[0, 0, 0, 0]), 0.0);
        assert_eq!(gx.sum_all(), 4.0);
    }

    #[test]
    fn global_avg_pool_and_backward() {
        let x = Tensor::arange(8).reshape([1, 2, 2, 2]);
        let y = global_avg_pool(&x);
        assert_eq!(y.dims(), &[1, 2]);
        assert_eq!(y.as_slice(), &[1.5, 5.5]);
        let go = Tensor::from_vec(vec![4.0, 8.0], [1, 2]);
        let gx = global_avg_pool_backward(&go, 2, 2);
        assert_eq!(gx.as_slice(), &[1., 1., 1., 1., 2., 2., 2., 2.]);
    }

    #[test]
    fn conv2d_stride2_downsamples() {
        let x = Tensor::ones([1, 1, 8, 8]);
        let w = Tensor::ones([1, 1, 3, 3]);
        let y = conv2d(&x, &w, None, Conv2dSpec::new(3, 2, 1));
        assert_eq!(y.dims(), &[1, 1, 4, 4]);
        // Interior output (away from padding) sums the full 3x3 window.
        assert_eq!(y.at(&[0, 0, 1, 1]), 9.0);
        // Top-left touches padding: only 2x2 of the window is inside.
        assert_eq!(y.at(&[0, 0, 0, 0]), 4.0);
    }
}
