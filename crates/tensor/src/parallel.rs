//! Intra-op worker threads for the compute kernels.
//!
//! The same scoped-thread design as the campaign executor in
//! `goldeneye::campaign::run_trials` (PR 1), one level down the stack:
//! workers pull task indices from a shared atomic counter inside a
//! `std::thread::scope`, every task writes only its own pre-assigned
//! output range, and the task→output mapping is fixed before any thread
//! starts — so results are **bit-identical for every thread count**
//! (including 1, which short-circuits to a plain loop with zero
//! overhead).
//!
//! The thread budget is resolved per call site as:
//!
//! 1. the thread-local override installed by [`with_threads`] (used by
//!    the campaign executor to pin intra-op parallelism to 1 inside its
//!    own worker threads, avoiding oversubscription), else
//! 2. the process-wide default set by [`set_max_threads`], else
//! 3. `std::thread::available_parallelism()`.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Process-wide default thread budget; 0 = "ask the OS".
static MAX_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Counts task batches dispatched to the worker pool (serial
/// short-circuits excluded).
fn dispatch_counter() -> &'static trace::Metric {
    static C: OnceLock<&'static trace::Metric> = OnceLock::new();
    C.get_or_init(|| trace::counter(trace::names::TENSOR_PARALLEL_DISPATCHES))
}

thread_local! {
    /// Per-thread override; `None` falls through to the global default.
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Sets the process-wide default intra-op thread budget (0 restores
/// "all available cores").
pub fn set_max_threads(n: usize) {
    MAX_THREADS.store(n, Ordering::Relaxed);
}

/// The thread budget kernels on the current thread will use.
pub fn max_threads() -> usize {
    if let Some(n) = OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    match MAX_THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        n => n,
    }
}

/// RAII guard restoring the previous thread-local budget on drop.
#[derive(Debug)]
pub struct ThreadsGuard {
    prev: Option<usize>,
}

impl Drop for ThreadsGuard {
    fn drop(&mut self) {
        OVERRIDE.with(|o| o.set(self.prev));
    }
}

/// Overrides the intra-op thread budget for the current thread until the
/// returned guard drops. Results are bit-identical for every budget; the
/// knob only trades latency for threads.
#[must_use = "the override lasts only while the guard is alive"]
pub fn with_threads(n: usize) -> ThreadsGuard {
    let prev = OVERRIDE.with(|o| o.replace(Some(n.max(1))));
    ThreadsGuard { prev }
}

/// Runs `tasks` independent closures, `f(task_index)`, on up to
/// [`max_threads`] scoped workers (serial when the budget or task count
/// is 1). Panics from any task are propagated after the scope joins.
///
/// `f` must confine its writes to state owned by its task index; under
/// that contract the result is independent of the thread count.
pub fn parallel_for<F>(tasks: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let workers = max_threads().min(tasks);
    if workers <= 1 {
        for i in 0..tasks {
            f(i);
        }
        return;
    }
    dispatch_counter().add(1);
    let next = AtomicUsize::new(0);
    // Workers inherit the dispatching thread's span path so kernel spans
    // aggregate under the campaign/trial that ran them.
    let prof_path = trace::profile_path();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let f = &f;
                let next = &next;
                let prof_path = prof_path.as_str();
                s.spawn(move || {
                    let _prof = trace::with_profile_path(prof_path);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= tasks {
                            break;
                        }
                        f(i);
                    }
                })
            })
            .collect();
        let mut panicked = None;
        for h in handles {
            if let Err(payload) = h.join() {
                panicked = Some(payload);
            }
        }
        if let Some(payload) = panicked {
            std::panic::resume_unwind(payload);
        }
    });
}

/// Splits `out` into fixed `chunk`-sized pieces and runs
/// `f(chunk_index, chunk)` for each on the worker pool.
///
/// The chunking is a pure function of `out.len()` and `chunk` — never of
/// the thread count — which is what makes chunk-parallel consumers
/// (tensor quantisation, GEMM row panels) byte-identical across
/// `--jobs` / thread-budget settings.
///
/// # Panics
///
/// Panics if `chunk == 0`.
pub fn par_chunks_mut<T, F>(out: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    let tasks = out.len().div_ceil(chunk);
    if tasks <= 1 || max_threads() <= 1 {
        for (i, c) in out.chunks_mut(chunk).enumerate() {
            f(i, c);
        }
        return;
    }
    let len = out.len();
    let base = SendPtr(out.as_mut_ptr());
    parallel_for(tasks, |i| {
        let start = i * chunk;
        let end = (start + chunk).min(len);
        // SAFETY: task i touches exactly `start..end`; tasks partition
        // `0..len` disjointly, and the scope in `parallel_for` outlives
        // no borrow of `out`.
        let slice = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
        f(i, slice);
    });
}

/// A raw pointer that asserts cross-thread sendability; used only for
/// provably disjoint writes (see [`par_chunks_mut`] and the GEMM row
/// panels in `linalg`).
pub(crate) struct SendPtr<T>(pub *mut T);
// SAFETY: every user hands each task a disjoint region behind the pointer,
// and T: Send bounds on the entry points keep non-sendable payloads out.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the whole
    /// `SendPtr` — edition-2021 disjoint capture would otherwise capture
    /// the bare `*mut T`, which is not `Sync`.
    pub(crate) fn get(self) -> *mut T {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_for_covers_every_task_once() {
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        let _g = with_threads(4);
        parallel_for(100, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_chunks_mut_is_thread_count_invariant() {
        let f = |i: usize, c: &mut [f32]| {
            for (j, v) in c.iter_mut().enumerate() {
                *v = (i * 1000 + j) as f32;
            }
        };
        let mut serial = vec![0.0f32; 1000];
        {
            let _g = with_threads(1);
            par_chunks_mut(&mut serial, 64, f);
        }
        for n in [2, 3, 8] {
            let mut par = vec![0.0f32; 1000];
            let _g = with_threads(n);
            par_chunks_mut(&mut par, 64, f);
            assert_eq!(serial, par, "diverged at {n} threads");
        }
    }

    #[test]
    fn override_nests_and_restores() {
        let outer = max_threads();
        {
            let _a = with_threads(3);
            assert_eq!(max_threads(), 3);
            {
                let _b = with_threads(7);
                assert_eq!(max_threads(), 7);
            }
            assert_eq!(max_threads(), 3);
        }
        assert_eq!(max_threads(), outer);
    }

    #[test]
    fn parallel_for_propagates_panics() {
        let _g = with_threads(2);
        let caught = std::panic::catch_unwind(|| {
            parallel_for(10, |i| {
                if i == 5 {
                    panic!("task 5 exploded");
                }
            });
        });
        assert!(caught.is_err());
    }
}
