//! Shape arithmetic: dimension bookkeeping, row-major strides, and
//! NumPy-style broadcasting rules.

use std::fmt;

/// The shape of a tensor: one extent per dimension, outermost first.
///
/// A scalar has an empty shape. Shapes are stored row-major, so the last
/// dimension is contiguous in memory.
///
/// # Examples
///
/// ```
/// use tensor::Shape;
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from dimension extents, outermost first.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape(dims)
    }

    /// The scalar shape (zero dimensions, one element).
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of extents; 1 for scalars).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// The extents as a slice, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Extent of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.ndim()`.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Row-major strides (in elements, not bytes) for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat row-major offset.
    ///
    /// # Panics
    ///
    /// Panics if `idx` has the wrong arity or any coordinate is out of range.
    pub fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(
            idx.len(),
            self.0.len(),
            "index arity {} does not match shape {:?}",
            idx.len(),
            self
        );
        let mut off = 0;
        let mut stride = 1;
        for i in (0..self.0.len()).rev() {
            assert!(idx[i] < self.0[i], "index {:?} out of bounds for shape {:?}", idx, self);
            off += idx[i] * stride;
            stride *= self.0[i];
        }
        off
    }

    /// Converts a flat row-major offset back into a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= self.numel()`.
    pub fn unravel(&self, mut offset: usize) -> Vec<usize> {
        assert!(
            offset < self.numel().max(1),
            "offset {} out of bounds for shape {:?}",
            offset,
            self
        );
        let mut idx = vec![0; self.0.len()];
        for (i, v) in idx.iter_mut().enumerate().rev() {
            *v = offset % self.0[i];
            offset /= self.0[i];
        }
        idx
    }

    /// Computes the broadcast shape of `a` and `b` under NumPy rules:
    /// dimensions are aligned from the right; extents must match or one of
    /// them must be 1.
    ///
    /// Returns `None` if the shapes are incompatible.
    pub fn broadcast(a: &Shape, b: &Shape) -> Option<Shape> {
        let n = a.ndim().max(b.ndim());
        let mut out = vec![0; n];
        for (i, o) in out.iter_mut().enumerate() {
            let da = if i < n - a.ndim() { 1 } else { a.0[i - (n - a.ndim())] };
            let db = if i < n - b.ndim() { 1 } else { b.0[i - (n - b.ndim())] };
            if da == db || db == 1 {
                *o = da;
            } else if da == 1 {
                *o = db;
            } else {
                return None;
            }
        }
        Some(Shape(out))
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(vec![2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(vec![5]).strides(), vec![1]);
        assert!(Shape::scalar().strides().is_empty());
    }

    #[test]
    fn offset_and_unravel_roundtrip() {
        let s = Shape::new(vec![2, 3, 4]);
        for flat in 0..s.numel() {
            let idx = s.unravel(flat);
            assert_eq!(s.offset(&idx), flat);
        }
    }

    #[test]
    fn offset_last_dim_contiguous() {
        let s = Shape::new(vec![2, 3]);
        assert_eq!(s.offset(&[0, 0]), 0);
        assert_eq!(s.offset(&[0, 1]), 1);
        assert_eq!(s.offset(&[1, 0]), 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_out_of_bounds_panics() {
        Shape::new(vec![2, 3]).offset(&[2, 0]);
    }

    #[test]
    fn broadcast_basic() {
        let a = Shape::new(vec![2, 3]);
        let b = Shape::new(vec![3]);
        assert_eq!(Shape::broadcast(&a, &b), Some(Shape::new(vec![2, 3])));
        let c = Shape::new(vec![2, 1]);
        assert_eq!(Shape::broadcast(&a, &c), Some(Shape::new(vec![2, 3])));
        let d = Shape::new(vec![4]);
        assert_eq!(Shape::broadcast(&a, &d), None);
    }

    #[test]
    fn broadcast_scalar() {
        let a = Shape::new(vec![2, 3]);
        assert_eq!(Shape::broadcast(&a, &Shape::scalar()), Some(Shape::new(vec![2, 3])));
    }

    #[test]
    fn numel_scalar_is_one() {
        assert_eq!(Shape::scalar().numel(), 1);
    }
}
