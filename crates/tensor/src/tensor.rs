//! The dense `f32` tensor type used throughout goldeneye-rs.
//!
//! Tensors are always contiguous and row-major; operations allocate new
//! tensors. This keeps the semantics simple and matches the "compute fabric"
//! role the tensor plays in the paper: a plain FP32 substrate on top of
//! which number formats are emulated.

use crate::shape::Shape;
use rand::Rng;
use std::fmt;

/// A dense, contiguous, row-major tensor of `f32` values.
///
/// # Examples
///
/// ```
/// use tensor::Tensor;
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
/// assert_eq!(t.at(&[1, 0]), 3.0);
/// assert_eq!(t.sum_all(), 10.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the shape's element count.
    pub fn from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.numel(),
            "buffer of {} elements does not fit shape {:?}",
            data.len(),
            shape
        );
        Tensor { shape, data }
    }

    /// Creates a scalar (0-dimensional) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor { shape: Shape::scalar(), data: vec![value] }
    }

    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor { shape, data: vec![0.0; n] }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor { shape, data: vec![value; n] }
    }

    /// Creates a tensor of iid standard-normal samples (Box–Muller).
    pub fn randn(shape: impl Into<Shape>, rng: &mut impl Rng) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos());
            if data.len() < n {
                data.push(r * theta.sin());
            }
        }
        Tensor { shape, data }
    }

    /// Creates a tensor of iid uniform samples in `[lo, hi)`.
    pub fn rand_uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut impl Rng) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        let data = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor { shape, data }
    }

    /// Creates a 1-d tensor `[0, 1, ..., n-1]`.
    pub fn arange(n: usize) -> Self {
        Tensor::from_vec((0..n).map(|i| i as f32).collect(), [n])
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The extents as a slice, outermost first.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.ndim()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Value at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds or has wrong arity.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.shape.offset(idx)]
    }

    /// Sets the value at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds or has wrong arity.
    pub fn set(&mut self, idx: &[usize], value: f32) {
        let off = self.shape.offset(idx);
        self.data[off] = value;
    }

    /// The single value of a scalar or one-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(self.numel(), 1, "item() on tensor with shape {:?}", self.shape);
        self.data[0]
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(self.numel(), shape.numel(), "cannot reshape {:?} to {:?}", self.shape, shape);
        Tensor { shape, data: self.data.clone() }
    }

    /// Applies `f` elementwise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Applies `f` elementwise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Sum of all elements.
    pub fn sum_all(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for empty tensors).
    pub fn mean_all(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum_all() / self.data.len() as f32
        }
    }

    /// Maximum element (−∞ for empty tensors).
    pub fn max_all(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (+∞ for empty tensors).
    pub fn min_all(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Maximum absolute value (0.0 for empty tensors).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |m, &x| m.max(x.abs()))
    }

    /// True if all elements are finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// True if `self` and `other` agree elementwise within `tol`.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self.data.iter().zip(&other.data).all(|(a, b)| (a - b).abs() <= tol + tol * b.abs())
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}", self.shape)?;
        if self.numel() <= 16 {
            write!(f, ", data={:?})", self.data)
        } else {
            write!(
                f,
                ", data=[{:.4}, {:.4}, ... {:.4}] n={})",
                self.data[0],
                self.data[1],
                self.data[self.data.len() - 1],
                self.numel()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_vec_and_at() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        assert_eq!(t.at(&[0, 0]), 1.0);
        assert_eq!(t.at(&[1, 2]), 6.0);
    }

    #[test]
    #[should_panic(expected = "does not fit shape")]
    fn from_vec_wrong_len_panics() {
        Tensor::from_vec(vec![1.0, 2.0], [3]);
    }

    #[test]
    fn zeros_ones_full() {
        assert_eq!(Tensor::zeros([2, 2]).sum_all(), 0.0);
        assert_eq!(Tensor::ones([2, 2]).sum_all(), 4.0);
        assert_eq!(Tensor::full([3], 2.5).sum_all(), 7.5);
    }

    #[test]
    fn randn_is_deterministic_per_seed() {
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let a = Tensor::randn([4, 4], &mut r1);
        let b = Tensor::randn([4, 4], &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn randn_has_roughly_unit_stats() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Tensor::randn([10_000], &mut rng);
        let mean = t.mean_all();
        let var = t.map(|x| (x - mean) * (x - mean)).mean_all();
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::arange(6).reshape([2, 3]);
        assert_eq!(t.at(&[1, 0]), 3.0);
    }

    #[test]
    fn map_and_reductions() {
        let t = Tensor::from_vec(vec![-1.0, 2.0, -3.0], [3]);
        assert_eq!(t.map(f32::abs).sum_all(), 6.0);
        assert_eq!(t.max_all(), 2.0);
        assert_eq!(t.min_all(), -3.0);
        assert_eq!(t.max_abs(), 3.0);
        assert_eq!(t.mean_all(), (-2.0) / 3.0);
    }

    #[test]
    fn allclose_tolerates_small_error() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let b = Tensor::from_vec(vec![1.0 + 1e-7, 2.0 - 1e-7], [2]);
        assert!(a.allclose(&b, 1e-5));
        assert!(!a.allclose(&Tensor::from_vec(vec![1.1, 2.0], [2]), 1e-5));
    }

    #[test]
    fn item_scalar() {
        assert_eq!(Tensor::scalar(3.5).item(), 3.5);
    }
}
