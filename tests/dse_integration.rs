//! Integration test of use case B: the binary-tree DSE heuristic driving
//! real emulated evaluations on a trained model.

use goldeneye::dse::{search, DseFamily};
use goldeneye::{evaluate_accuracy, GoldenEye};
use models::{train, ResNet, ResNetConfig, SyntheticDataset, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn trained() -> (ResNet, SyntheticDataset, f32) {
    let mut rng = StdRng::seed_from_u64(23);
    let model = ResNet::new(ResNetConfig::tiny(8), &mut rng);
    let data = SyntheticDataset::generate(96, 16, 4, 29);
    train(
        &model,
        &data,
        &TrainConfig { epochs: 8, batch_size: 16, lr: 3e-3, ..Default::default() },
    );
    let baseline = models::evaluate(&model, &data, 48, 16);
    (model, data, baseline)
}

#[test]
fn dse_on_real_model_stays_within_16_nodes_and_respects_threshold() {
    let (model, data, baseline) = trained();
    assert!(baseline > 0.5, "training failed: {baseline}");
    for family in [DseFamily::Int, DseFamily::Fp, DseFamily::Bfp { block: 16 }] {
        let result = search(
            family,
            |spec| {
                let ge = GoldenEye::new(spec.build());
                evaluate_accuracy(&ge, &model, &data, 48, 16)
            },
            baseline,
            0.10,
        );
        assert!(result.nodes.len() <= 16, "{family:?}: {} nodes", result.nodes.len());
        assert!(!result.nodes.is_empty());
        // If the search proposes a design point, its measured accuracy must
        // meet the threshold.
        if let Some(best) = &result.best {
            let ge = GoldenEye::new(best.build());
            let acc = evaluate_accuracy(&ge, &model, &data, 48, 16);
            assert!(
                acc >= result.threshold,
                "{family:?}: best {best} re-measures at {acc} < {}",
                result.threshold
            );
        }
        // Wide formats always pass (32-bit root accepted).
        assert!(result.nodes[0].accepted, "{family:?}: 32-bit root rejected");
    }
}

#[test]
fn dse_suggests_narrower_formats_than_fp32() {
    let (model, data, baseline) = trained();
    let result = search(
        DseFamily::Int,
        |spec| {
            let ge = GoldenEye::new(spec.build());
            evaluate_accuracy(&ge, &model, &data, 48, 16)
        },
        baseline,
        0.10,
    );
    let best = result.best.expect("INT should be viable at some width");
    if let formats::FormatSpec::Int { bits } = best {
        assert!(bits < 32, "DSE failed to shrink below 32 bits");
    } else {
        panic!("unexpected family from INT search: {best}");
    }
}
