//! End-to-end observability contract: campaigns emit validatable trial
//! events, spans, and manifests; the JSONL stream they produce passes
//! `trace::validate_trace`; and manifests round-trip through JSON.
//!
//! These tests mutate the process-global tracer (level, capture buffer,
//! metrics), so they serialise on a local mutex.

use goldeneye::{run_campaign, CampaignConfig, GoldenEye};
use inject::SiteKind;
use models::{train, ResNet, ResNetConfig, SyntheticDataset, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Mutex, MutexGuard};
use trace::Level;

fn serialize_tests() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|p| p.into_inner())
}

fn setup() -> (ResNet, tensor::Tensor, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(23);
    let model = ResNet::new(ResNetConfig::tiny(8), &mut rng);
    let data = SyntheticDataset::generate(48, 16, 4, 19);
    train(
        &model,
        &data,
        &TrainConfig { epochs: 3, batch_size: 16, lr: 3e-3, ..Default::default() },
    );
    let (x, y) = data.head_batch(8);
    (model, x, y)
}

#[test]
fn campaign_emits_validatable_trial_events_and_spans() {
    let _gate = serialize_tests();
    let (model, x, y) = setup();
    let ge = GoldenEye::parse("fp:e4m3").unwrap();
    let cfg = CampaignConfig {
        injections_per_layer: 3,
        kind: SiteKind::Value,
        seed: 7,
        jobs: 1,
        ..Default::default()
    };

    trace::set_level(Level::Debug); // spans emit at Debug
    trace::capture_events(true);
    trace::reset_metrics();
    let _ = trace::take_events();
    let result = run_campaign(&ge, &model, &x, &y, &cfg);
    trace::capture_events(false);
    trace::set_level(Level::Info);
    let events = trace::take_events();

    let mut trials = 0usize;
    let mut campaign_spans = 0usize;
    for e in &events {
        let v = e.to_json();
        let kind = trace::validate_event(&v).expect("every emitted event validates");
        match kind {
            "trial" => trials += 1,
            "span" if v.get("name").and_then(|n| n.as_str()) == Some("campaign") => {
                campaign_spans += 1;
            }
            _ => {}
        }
    }
    assert_eq!(trials, result.trials.len(), "one trial event per trial record");
    assert_eq!(campaign_spans, 1, "campaign wrapped in exactly one span");

    // The trials/sec counter advanced by exactly the number of trials.
    let counters = trace::metrics_snapshot();
    let (_, trial_counter) = counters
        .iter()
        .find(|(name, _)| name == "campaign.trials")
        .expect("campaign.trials counter registered");
    assert_eq!(trial_counter.get("count").and_then(|c| c.as_u64()), Some(trials as u64));
}

#[test]
fn campaign_jsonl_stream_passes_validate_trace() {
    let _gate = serialize_tests();
    let (model, x, y) = setup();
    let ge = GoldenEye::parse("int:8").unwrap();
    let cfg = CampaignConfig {
        injections_per_layer: 2,
        kind: SiteKind::Value,
        seed: 9,
        jobs: 2,
        ..Default::default()
    };

    trace::capture_events(true);
    let _ = trace::take_events();
    let t = std::time::Instant::now();
    let result = run_campaign(&ge, &model, &x, &y, &cfg);
    trace::capture_events(false);
    let events = trace::take_events();

    // Reconstruct the JSONL stream exactly as the file sink writes it:
    // one compact event object per line, manifest last.
    let mut jsonl = String::new();
    for e in &events {
        jsonl.push_str(&e.to_json().to_compact());
        jsonl.push('\n');
    }
    let manifest = result.to_manifest("test campaign", &cfg, t.elapsed().as_secs_f64());
    jsonl.push_str(&manifest.to_json().to_compact());
    jsonl.push('\n');

    let summary = trace::validate_trace(&jsonl).expect("stream validates");
    assert_eq!(summary.trials, result.trials.len());
    assert_eq!(summary.manifests, 1);
    assert_eq!(summary.lines, events.len() + 1);
}

/// Runs one campaign with event capture on and returns the canonical
/// (volatile-fields-stripped) content of every `progress` heartbeat it
/// emitted, in order.
fn canonical_heartbeats(
    model: &ResNet,
    x: &tensor::Tensor,
    y: &[usize],
    cfg: &CampaignConfig,
) -> Vec<String> {
    let ge = GoldenEye::parse("fp:e4m3").unwrap();
    trace::capture_events(true);
    let _ = trace::take_events();
    run_campaign(&ge, model, x, y, cfg);
    trace::capture_events(false);
    trace::take_events()
        .iter()
        .map(|e| e.to_json())
        .filter(|v| v.get("type").and_then(|t| t.as_str()) == Some("progress"))
        .inspect(|v| {
            trace::validate_event(v).expect("heartbeat validates");
        })
        .map(|v| trace::canonical_progress(&v))
        .collect()
}

#[test]
fn progress_heartbeats_are_byte_deterministic_across_jobs_and_batch() {
    let _gate = serialize_tests();
    let (model, x, y) = setup();
    let base = CampaignConfig {
        injections_per_layer: 3,
        kind: SiteKind::Value,
        seed: 5,
        jobs: 1,
        ..Default::default()
    };
    let reference = canonical_heartbeats(&model, &x, &y, &base.clone().with_trials_per_batch(1));
    assert!(!reference.is_empty(), "campaign emitted no heartbeats");
    for (jobs, batch) in [(2usize, 1usize), (1, 4), (4, 8)] {
        let cfg = CampaignConfig { jobs, ..base.clone() }.with_trials_per_batch(batch);
        let got = canonical_heartbeats(&model, &x, &y, &cfg);
        assert_eq!(
            got, reference,
            "canonical heartbeat content diverged at jobs={jobs} batch={batch}"
        );
    }
    // The canonical form keeps the deterministic fields and drops every
    // volatile one.
    for hb in &reference {
        for key in ["\"phase\"", "\"done\"", "\"planned\"", "\"wave\""] {
            assert!(hb.contains(key), "{hb} missing {key}");
        }
        for volatile in trace::names::PROGRESS_VOLATILE_FIELDS {
            assert!(!hb.contains(&format!("\"{volatile}\"")), "{hb} leaked {volatile}");
        }
    }
}

#[test]
fn every_recorded_metric_name_is_registered() {
    let _gate = serialize_tests();
    let (model, x, y) = setup();
    let ge = GoldenEye::parse("int:8").unwrap();
    let cfg = CampaignConfig {
        injections_per_layer: 2,
        kind: SiteKind::Value,
        seed: 3,
        jobs: 2,
        ..Default::default()
    };
    trace::reset_metrics();
    run_campaign(&ge, &model, &x, &y, &cfg);
    let snapshot = trace::metrics_snapshot();
    assert!(!snapshot.is_empty(), "campaign recorded no metrics");
    for (name, _) in &snapshot {
        assert!(
            trace::names::is_registered_metric(name),
            "metric `{name}` recorded but not registered in trace::names"
        );
    }
}

#[test]
fn profile_tree_accounts_for_campaign_wall_clock() {
    let _gate = serialize_tests();
    let (model, x, y) = setup();
    let ge = GoldenEye::parse("fp:e4m3").unwrap();
    let cfg = CampaignConfig {
        injections_per_layer: 4,
        kind: SiteKind::Value,
        seed: 13,
        jobs: 2,
        ..Default::default()
    };
    trace::reset_profile();
    let t = std::time::Instant::now();
    let result = run_campaign(&ge, &model, &x, &y, &cfg);
    let wall_ns = t.elapsed().as_nanos() as u64;
    let roots = trace::profile_snapshot();
    let campaign = roots
        .iter()
        .find(|n| n.name == "campaign")
        .expect("campaign span recorded in the profile tree");
    assert_eq!(campaign.count, 1);
    assert!(
        campaign.inclusive_ns >= wall_ns * 9 / 10,
        "profile tree covers {}ns of {}ns wall ({:.1}%) — below the 90% contract",
        campaign.inclusive_ns,
        wall_ns,
        campaign.inclusive_ns as f64 / wall_ns as f64 * 100.0
    );
    // The tree also lands in the manifest and exports as folded stacks.
    let mut manifest = result.to_manifest("test campaign", &cfg, 0.5);
    manifest.snapshot_profile();
    assert!(manifest.profile.iter().any(|n| n.name == "campaign"));
    let folded = trace::profile_folded(&manifest.profile);
    assert!(folded.lines().any(|l| l.starts_with("campaign")), "{folded}");
}

#[test]
fn campaign_manifest_round_trips_through_json() {
    let _gate = serialize_tests();
    let (model, x, y) = setup();
    let ge = GoldenEye::parse("bfp:e8m7:tensor").unwrap();
    let cfg = CampaignConfig {
        injections_per_layer: 2,
        kind: SiteKind::Metadata,
        seed: 11,
        jobs: 1,
        ..Default::default()
    };
    let result = run_campaign(&ge, &model, &x, &y, &cfg);
    let mut manifest = result.to_manifest("test campaign", &cfg, 0.25);
    manifest.snapshot_counters();

    trace::validate_manifest(&manifest.to_json()).expect("manifest validates");
    let text = manifest.to_json().to_pretty();
    let back = trace::RunManifest::from_json_str(&text).expect("manifest parses back");
    assert_eq!(manifest.to_json().to_compact(), back.to_json().to_compact());
    assert_eq!(back.layers.len(), result.layers.len());
    assert!(!back.convergence.is_empty(), "convergence trace embedded");
}
