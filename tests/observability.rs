//! End-to-end observability contract: campaigns emit validatable trial
//! events, spans, and manifests; the JSONL stream they produce passes
//! `trace::validate_trace`; and manifests round-trip through JSON.
//!
//! These tests mutate the process-global tracer (level, capture buffer,
//! metrics), so they serialise on a local mutex.

use goldeneye::{run_campaign, CampaignConfig, GoldenEye};
use inject::SiteKind;
use models::{train, ResNet, ResNetConfig, SyntheticDataset, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Mutex, MutexGuard};
use trace::Level;

fn serialize_tests() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|p| p.into_inner())
}

fn setup() -> (ResNet, tensor::Tensor, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(23);
    let model = ResNet::new(ResNetConfig::tiny(8), &mut rng);
    let data = SyntheticDataset::generate(48, 16, 4, 19);
    train(
        &model,
        &data,
        &TrainConfig { epochs: 3, batch_size: 16, lr: 3e-3, ..Default::default() },
    );
    let (x, y) = data.head_batch(8);
    (model, x, y)
}

#[test]
fn campaign_emits_validatable_trial_events_and_spans() {
    let _gate = serialize_tests();
    let (model, x, y) = setup();
    let ge = GoldenEye::parse("fp:e4m3").unwrap();
    let cfg = CampaignConfig {
        injections_per_layer: 3,
        kind: SiteKind::Value,
        seed: 7,
        jobs: 1,
        ..Default::default()
    };

    trace::set_level(Level::Debug); // spans emit at Debug
    trace::capture_events(true);
    trace::reset_metrics();
    let _ = trace::take_events();
    let result = run_campaign(&ge, &model, &x, &y, &cfg);
    trace::capture_events(false);
    trace::set_level(Level::Info);
    let events = trace::take_events();

    let mut trials = 0usize;
    let mut campaign_spans = 0usize;
    for e in &events {
        let v = e.to_json();
        let kind = trace::validate_event(&v).expect("every emitted event validates");
        match kind {
            "trial" => trials += 1,
            "span" if v.get("name").and_then(|n| n.as_str()) == Some("campaign") => {
                campaign_spans += 1;
            }
            _ => {}
        }
    }
    assert_eq!(trials, result.trials.len(), "one trial event per trial record");
    assert_eq!(campaign_spans, 1, "campaign wrapped in exactly one span");

    // The trials/sec counter advanced by exactly the number of trials.
    let counters = trace::metrics_snapshot();
    let (_, trial_counter) = counters
        .iter()
        .find(|(name, _)| name == "campaign.trials")
        .expect("campaign.trials counter registered");
    assert_eq!(trial_counter.get("count").and_then(|c| c.as_u64()), Some(trials as u64));
}

#[test]
fn campaign_jsonl_stream_passes_validate_trace() {
    let _gate = serialize_tests();
    let (model, x, y) = setup();
    let ge = GoldenEye::parse("int:8").unwrap();
    let cfg = CampaignConfig {
        injections_per_layer: 2,
        kind: SiteKind::Value,
        seed: 9,
        jobs: 2,
        ..Default::default()
    };

    trace::capture_events(true);
    let _ = trace::take_events();
    let t = std::time::Instant::now();
    let result = run_campaign(&ge, &model, &x, &y, &cfg);
    trace::capture_events(false);
    let events = trace::take_events();

    // Reconstruct the JSONL stream exactly as the file sink writes it:
    // one compact event object per line, manifest last.
    let mut jsonl = String::new();
    for e in &events {
        jsonl.push_str(&e.to_json().to_compact());
        jsonl.push('\n');
    }
    let manifest = result.to_manifest("test campaign", &cfg, t.elapsed().as_secs_f64());
    jsonl.push_str(&manifest.to_json().to_compact());
    jsonl.push('\n');

    let summary = trace::validate_trace(&jsonl).expect("stream validates");
    assert_eq!(summary.trials, result.trials.len());
    assert_eq!(summary.manifests, 1);
    assert_eq!(summary.lines, events.len() + 1);
}

#[test]
fn campaign_manifest_round_trips_through_json() {
    let _gate = serialize_tests();
    let (model, x, y) = setup();
    let ge = GoldenEye::parse("bfp:e8m7:tensor").unwrap();
    let cfg = CampaignConfig {
        injections_per_layer: 2,
        kind: SiteKind::Metadata,
        seed: 11,
        jobs: 1,
        ..Default::default()
    };
    let result = run_campaign(&ge, &model, &x, &y, &cfg);
    let mut manifest = result.to_manifest("test campaign", &cfg, 0.25);
    manifest.snapshot_counters();

    trace::validate_manifest(&manifest.to_json()).expect("manifest validates");
    let text = manifest.to_json().to_pretty();
    let back = trace::RunManifest::from_json_str(&text).expect("manifest parses back");
    assert_eq!(manifest.to_json().to_compact(), back.to_json().to_compact());
    assert_eq!(back.layers.len(), result.layers.len());
    assert!(!back.convergence.is_empty(), "convergence trace embedded");
}
