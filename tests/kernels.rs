//! Differential tests of the compute kernels: the packed register-tiled
//! SGEMM against the naive reference, and the chunk-parallel quantise
//! kernels across intra-op thread budgets. Both contracts are *bitwise* —
//! the kernels are required to be exact drop-ins, not approximations
//! (DESIGN.md §10).

use formats::FormatSpec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tensor::linalg::kernels::{self, Kernel};
use tensor::linalg::{matmul, matmul_fused, matmul_naive};
use tensor::{parallel, Tensor};

fn random_tensor(dims: [usize; 2], rng: &mut StdRng) -> Tensor {
    let n = dims[0] * dims[1];
    Tensor::from_vec((0..n).map(|_| rng.gen_range(-2.0f32..2.0)).collect(), dims)
}

/// Bitwise equality with the NaN-payload carve-out (DESIGN.md §15): every
/// non-NaN element must match exactly; NaNs must appear at identical
/// positions but their payload bits are not pinned across ISAs.
fn assert_bits_eq(a: &Tensor, b: &Tensor, what: &str) {
    assert_eq!(a.dims(), b.dims(), "{what}: shape");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert!(
            x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan()),
            "{what}: element {i}: {x} vs {y}"
        );
    }
}

/// Restores runtime kernel dispatch on drop (including on test failure).
struct ForceGuard;
impl Drop for ForceGuard {
    fn drop(&mut self) {
        kernels::force(None);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The packed kernel is bit-exact against the naive triple loop for
    /// arbitrary shapes up to 256, including degenerate 0/1 dims (the dim
    /// generator floors at 0 so ragged, empty, and single-row/col panels
    /// all appear).
    #[test]
    fn prop_matmul_bit_exact_vs_naive(
        m in 0usize..=256, k in 0usize..=256, n in 0usize..=256, seed in 0u64..1000,
    ) {
        // Soft-cap the work so the 48-case run stays fast: shrink the
        // largest dim until m·k·n fits, preserving degenerate shapes.
        let (mut m, mut k, mut n) = (m, k, n);
        while m * k * n > 1 << 21 {
            let biggest = m.max(k).max(n);
            if m == biggest { m /= 2 } else if k == biggest { k /= 2 } else { n /= 2 }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_tensor([m, k], &mut rng);
        let b = random_tensor([k, n], &mut rng);
        let reference = matmul_naive(&a, &b);
        for threads in [1usize, 2, 8] {
            let _guard = parallel::with_threads(threads);
            let got = matmul(&a, &b);
            prop_assert_eq!(got.dims(), reference.dims());
            for (i, (x, y)) in got.as_slice().iter().zip(reference.as_slice()).enumerate() {
                prop_assert!(
                    x.to_bits() == y.to_bits(),
                    "({},{},{}) threads={}: element {}: {} vs {}", m, k, n, threads, i, x, y
                );
            }
        }
    }

    /// Chunk-parallel quantisation is byte-identical for every intra-op
    /// thread budget (the chunk grid is a function of length, never of
    /// worker count), for every format family.
    #[test]
    fn prop_quantize_identical_across_thread_budgets(
        len in 1usize..10_000, seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::from_vec(
            (0..len).map(|_| rng.gen_range(-50.0f32..50.0)).collect(),
            [len],
        );
        for spec in ["fp:e4m3", "fxp:1:3:4", "int:8", "bfp:e5m5:b4", "afp:e4m3", "posit8"] {
            let f = spec.parse::<FormatSpec>().unwrap().build();
            let serial = {
                let _g = parallel::with_threads(1);
                f.real_to_format_tensor(&x)
            };
            for threads in [2usize, 8] {
                let _g = parallel::with_threads(threads);
                let q = f.real_to_format_tensor(&x);
                prop_assert_eq!(&q.meta, &serial.meta, "{} meta, {} threads", spec, threads);
                for (i, (a, b)) in
                    q.values.as_slice().iter().zip(serial.values.as_slice()).enumerate()
                {
                    prop_assert!(
                        a.to_bits() == b.to_bits(),
                        "{} threads={}: element {}: {} vs {}", spec, threads, i, a, b
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The forced-fallback differential matrix: every supported micro-kernel
    /// (scalar / AVX2 / AVX-512 as the host allows) × thread budget ×
    /// fused/unfused pack must agree with the forced-scalar single-thread
    /// baseline byte-for-byte, ragged shapes included. This is the suite the
    /// CI `kernel-matrix` job replays under each `GOLDENEYE_KERNEL` value.
    #[test]
    fn prop_forced_kernels_fused_or_not_match_scalar(
        m in 0usize..=80, k in 0usize..=80, n in 0usize..=80, seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_tensor([m, k], &mut rng);
        let b = random_tensor([k, n], &mut rng);
        // A toy mid-precision quantiser for the fused-pack leg (exact in
        // f32, so fused vs pre-quantised operands must agree bitwise).
        let quant = |x: f32| (x * 8.0).round() * 0.125;
        let aq = a.map(quant);
        let bq = b.map(quant);
        let _restore = ForceGuard;
        kernels::force(Some(Kernel::Scalar));
        let base = {
            let _g = parallel::with_threads(1);
            matmul(&aq, &bq)
        };
        for kern in kernels::supported_kernels() {
            kernels::force(Some(kern));
            for threads in [1usize, 2, 8] {
                let _g = parallel::with_threads(threads);
                for (label, got) in [
                    ("unfused", matmul(&aq, &bq)),
                    ("fused", matmul_fused(&a, &b, Some(&quant), Some(&quant))),
                ] {
                    prop_assert_eq!(got.dims(), base.dims());
                    for (i, (x, y)) in got.as_slice().iter().zip(base.as_slice()).enumerate() {
                        prop_assert!(
                            x.to_bits() == y.to_bits(),
                            "({},{},{}) {:?} {} threads={}: element {}: {} vs {}",
                            m, k, n, kern, label, threads, i, x, y
                        );
                    }
                }
            }
        }
    }
}

/// NaN and Inf flow through every forced kernel exactly like the scalar
/// loop (NaN-for-NaN at identical positions; payloads are not pinned
/// across ISAs — DESIGN.md §15). Ragged shape so edge tiles are hit too.
#[test]
fn forced_kernels_propagate_nan_inf_like_scalar() {
    let (m, k, n) = (6usize, 5, 19);
    let mut rng = StdRng::seed_from_u64(11);
    let mut av: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
    let mut bv: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
    av[0] = f32::NAN;
    av[k + 1] = f32::INFINITY;
    bv[2 * n + 3] = f32::NEG_INFINITY;
    bv[n - 1] = f32::NAN;
    let a = Tensor::from_vec(av, [m, k]);
    let b = Tensor::from_vec(bv, [k, n]);
    let _restore = ForceGuard;
    kernels::force(Some(Kernel::Scalar));
    let base = {
        let _g = parallel::with_threads(1);
        matmul(&a, &b)
    };
    assert!(base.as_slice().iter().any(|x| x.is_nan()), "fixture must produce NaNs");
    for kern in kernels::supported_kernels() {
        kernels::force(Some(kern));
        for threads in [1usize, 8] {
            let _g = parallel::with_threads(threads);
            assert_bits_eq(&matmul(&a, &b), &base, &format!("{kern:?} threads={threads}"));
        }
    }
}

/// End to end: the canonical per-trial campaign records are byte-identical
/// under every forced kernel and under the fused-roundtrip hook toggle.
/// The kernel layer and the fused quantise path are pure performance
/// levers — no campaign statistic may move.
#[test]
fn campaign_records_identical_across_kernels_and_fused_toggle() {
    use goldeneye::{run_campaign, CampaignConfig, GoldenEye};
    use inject::SiteKind;
    let mut rng = StdRng::seed_from_u64(1);
    let model = models::ResNet::new(models::ResNetConfig::tiny(4), &mut rng);
    let data = models::SyntheticDataset::generate(16, 16, 4, 5);
    let (x, y) = data.head_batch(4);
    let ge = GoldenEye::parse("fp:e4m3").expect("valid spec");
    let cfg = CampaignConfig {
        injections_per_layer: 2,
        kind: SiteKind::Value,
        seed: 17,
        jobs: 1,
        ..Default::default()
    };
    let _restore = ForceGuard;
    kernels::force(Some(Kernel::Scalar));
    goldeneye::set_fused_quantize(false);
    let reference = run_campaign(&ge, &model, &x, &y, &cfg).canonical_trial_jsonl();
    assert!(!reference.is_empty());
    for kern in kernels::supported_kernels() {
        kernels::force(Some(kern));
        for fused in [false, true] {
            goldeneye::set_fused_quantize(fused);
            let got = run_campaign(&ge, &model, &x, &y, &cfg).canonical_trial_jsonl();
            assert!(got == reference, "campaign records diverged under {kern:?} fused={fused}");
        }
    }
    goldeneye::set_fused_quantize(true);
}

/// The historical zero-skip dropped NaN/Inf propagation; the packed kernel
/// must not. Pinned here at the integration level on top of the unit test
/// in crates/tensor so a kernel swap can't silently regress it.
#[test]
fn matmul_propagates_nan_and_inf_through_zeros() {
    let a = Tensor::from_vec(vec![0.0, 1.0, f32::NAN, 0.0], [2, 2]);
    let b = Tensor::from_vec(vec![f32::INFINITY, 0.0, 0.0, 1.0], [2, 2]);
    let got = matmul(&a, &b);
    let reference = matmul_naive(&a, &b);
    // Row 0: 0·Inf + 1·0 = NaN; row 1: NaN·Inf + 0·0 = NaN.
    assert!(got.as_slice()[0].is_nan());
    assert!(got.as_slice()[2].is_nan());
    assert_bits_eq(&got, &reference, "NaN/Inf propagation");
}

/// conv2d through the workspace scratch pool stays bit-identical across
/// thread budgets too (the im2col GEMM inherits the sgemm contract).
#[test]
fn conv2d_bit_identical_across_thread_budgets() {
    let mut rng = StdRng::seed_from_u64(7);
    let x = Tensor::from_vec(
        (0..2 * 3 * 12 * 12).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        [2, 3, 12, 12],
    );
    let w = Tensor::from_vec(
        (0..4 * 3 * 3 * 3).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        [4, 3, 3, 3],
    );
    let spec = tensor::Conv2dSpec { kernel: 3, stride: 1, padding: 1 };
    let serial = {
        let _g = parallel::with_threads(1);
        tensor::conv::conv2d(&x, &w, None, spec)
    };
    for threads in [2usize, 8] {
        let _g = parallel::with_threads(threads);
        let got = tensor::conv::conv2d(&x, &w, None, spec);
        assert_bits_eq(&got, &serial, "conv2d");
    }
}
