//! Integration tests of the resiliency-analysis pipeline (use case C):
//! cross-crate invariants and the paper's qualitative claims about fault
//! outcomes.

use goldeneye::{run_campaign, CampaignConfig, GoldenEye, InjectionPlan};
use inject::SiteKind;
use metrics::compare_outcomes;
use models::{train, ResNet, ResNetConfig, SyntheticDataset, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup() -> (ResNet, tensor::Tensor, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(13);
    let model = ResNet::new(ResNetConfig::tiny(8), &mut rng);
    let data = SyntheticDataset::generate(64, 16, 4, 17);
    train(
        &model,
        &data,
        &TrainConfig { epochs: 5, batch_size: 16, lr: 3e-3, ..Default::default() },
    );
    let (x, y) = data.head_batch(8);
    (model, x, y)
}

#[test]
fn golden_run_without_injection_has_zero_outcome() {
    let (model, x, y) = setup();
    let ge = GoldenEye::parse("int:8").unwrap();
    let a = ge.run(&model, x.clone());
    let b = ge.run(&model, x);
    let o = compare_outcomes(&a, &b, &y);
    assert_eq!(o.delta_loss, 0.0);
    assert_eq!(o.mismatch_rate, 0.0);
}

#[test]
fn some_injections_corrupt_some_are_masked() {
    // Fault-injection sanity: across many seeds, single-bit flips must
    // produce both masked outcomes (ΔLoss ≈ 0) and corrupting ones.
    let (model, x, y) = setup();
    let ge = GoldenEye::parse("fp:e4m3").unwrap();
    let layers = ge.discover_layers(&model, x.clone());
    let golden = ge.run(&model, x.clone());
    let mut masked = 0;
    let mut corrupted = 0;
    for seed in 0..60 {
        let plan = InjectionPlan::single(layers[0].index, SiteKind::Value);
        let (faulty, rec) = ge.run_with_injection(&model, x.clone(), plan, seed);
        assert!(rec.is_some());
        let o = compare_outcomes(&golden, &faulty, &y);
        if o.delta_loss < 1e-6 {
            masked += 1;
        } else {
            corrupted += 1;
        }
    }
    assert!(masked > 0, "no masked faults in 60 injections");
    assert!(corrupted > 0, "no corrupting faults in 60 injections");
}

#[test]
fn bfp_metadata_campaign_dominates_value_campaign() {
    let (model, x, y) = setup();
    let ge = GoldenEye::parse("bfp:e5m5:tensor").unwrap();
    let value = run_campaign(
        &ge,
        &model,
        &x,
        &y,
        &CampaignConfig {
            injections_per_layer: 20,
            kind: SiteKind::Value,
            seed: 5,
            jobs: 1,
            ..Default::default()
        },
    );
    let meta = run_campaign(
        &ge,
        &model,
        &x,
        &y,
        &CampaignConfig {
            injections_per_layer: 20,
            kind: SiteKind::Metadata,
            seed: 5,
            jobs: 1,
            ..Default::default()
        },
    );
    assert!(meta.avg_delta_loss() > value.avg_delta_loss());
}

#[test]
fn afp_average_resilience_beats_bfp() {
    // The paper's §IV-C: AFP is on average more resilient layer-wise than
    // BFP for metadata errors. The mechanism: BFP's shared exponent is a
    // wide register (8 bits for the bfloat16-derived BFP used in the
    // paper), so one flip can rescale a whole tensor by up to 2^128,
    // while AFP's exponent bias lives in a 4-bit register, bounding the
    // worst-case rescale at 2^8.
    let (model, x, y) = setup();
    let bfp = GoldenEye::parse("bfp:e8m7:tensor").unwrap();
    let afp = GoldenEye::parse("afp:e5m2").unwrap();
    let cfg = CampaignConfig {
        injections_per_layer: 25,
        kind: SiteKind::Metadata,
        seed: 2,
        jobs: 1,
        ..Default::default()
    };
    let bfp_meta = run_campaign(&bfp, &model, &x, &y, &cfg);
    let afp_meta = run_campaign(&afp, &model, &x, &y, &cfg);
    assert!(
        afp_meta.avg_delta_loss() < bfp_meta.avg_delta_loss(),
        "AFP metadata ΔLoss {} should be below BFP's {}",
        afp_meta.avg_delta_loss(),
        bfp_meta.avg_delta_loss()
    );
}

#[test]
fn range_detector_reduces_delta_loss() {
    // §V-B: the (toggle-able, default-on) range detector clamps faulty
    // activations and should reduce average corruption under FP value
    // flips (whose worst case is an exponent flip to a huge value).
    let (model, x, y) = setup();
    let plain = GoldenEye::parse("fp16").unwrap();
    let guarded = GoldenEye::parse("fp16").unwrap().with_range_detector(true);
    guarded.profile_ranges(&model, std::slice::from_ref(&x));
    let cfg = CampaignConfig {
        injections_per_layer: 30,
        kind: SiteKind::Value,
        seed: 8,
        jobs: 1,
        ..Default::default()
    };
    let unguarded_result = run_campaign(&plain, &model, &x, &y, &cfg);
    let guarded_result = run_campaign(&guarded, &model, &x, &y, &cfg);
    assert!(
        guarded_result.avg_delta_loss() <= unguarded_result.avg_delta_loss(),
        "detector increased ΔLoss: {} vs {}",
        guarded_result.avg_delta_loss(),
        unguarded_result.avg_delta_loss()
    );
}

#[test]
fn weight_faults_affect_inference() {
    let (model, x, _) = setup();
    let ge = GoldenEye::parse("fp16").unwrap();
    let before = ge.run(&model, x.clone());
    let snap = goldeneye::ParamSnapshot::capture(&model);
    // Flip the MSB (sign) of several stem-conv weights.
    for el in 0..4 {
        ge.inject_weight_fault(&model, "stem.conv.weight", el, 1);
    }
    let after = ge.run(&model, x);
    snap.restore(&model);
    assert!(!before.allclose(&after, 1e-7), "weight faults had no effect");
}

#[test]
fn campaign_stats_match_manual_replication() {
    // The campaign's per-layer mean must equal manually re-running the
    // same seeds (full determinism across the stack).
    let (model, x, y) = setup();
    let ge = GoldenEye::parse("int:8").unwrap();
    let cfg = CampaignConfig {
        injections_per_layer: 4,
        kind: SiteKind::Value,
        seed: 100,
        jobs: 1,
        ..Default::default()
    };
    let result = run_campaign(&ge, &model, &x, &y, &cfg);
    let golden = ge.run(&model, x.clone());
    let layer0 = &result.layers[0];
    let mut manual = metrics::RunningStats::new();
    for i in 0..4 {
        let seed = goldeneye::trial_seed(100, layer0.layer as u64, i as u64);
        let plan = InjectionPlan::single(layer0.layer, SiteKind::Value);
        let (faulty, _) = ge.run_with_injection(&model, x.clone(), plan, seed);
        manual.push(compare_outcomes(&golden, &faulty, &y).delta_loss);
    }
    assert_eq!(layer0.delta_loss.mean(), manual.mean());
}

#[test]
fn batch_injector_edge_cases_match_per_trial_typed_errors() {
    // The batched sampling APIs must report the same typed
    // `EmptyFaultSpace` errors as the per-trial path — for every batch
    // size, including one — instead of panicking or silently yielding
    // nothing.
    use inject::{BitSampler, BitStrata, EmptyFaultSpace, Injector};
    let fmt = formats::FloatingPoint::new(4, 3);
    let strata = BitStrata::for_format(&fmt);
    for seeds in [&[1u64][..], &[1, 2, 3][..]] {
        assert_eq!(
            Injector::try_sample_value_fault_batch(seeds, 0, &BitSampler::Uniform, &strata),
            Err(EmptyFaultSpace::NoElements),
            "batch of {} over an empty tensor",
            seeds.len()
        );
        assert_eq!(
            Injector::try_sample_metadata_fault_batch(seeds, 0, 8),
            Err(EmptyFaultSpace::NoMetadataWords),
            "metadata batch of {} with no words",
            seeds.len()
        );
    }
    // Batch of one must agree with the serial sampler, error or not.
    let serial = Injector::new(5).try_sample_value_fault(0, 8);
    let batch = Injector::try_sample_value_fault_batch(&[5], 0, &BitSampler::Uniform, &strata);
    assert_eq!(serial.unwrap_err(), batch.unwrap_err());
    // An empty *batch* over a valid space is not an error — there is
    // simply nothing to sample.
    let empty = Injector::try_sample_value_fault_batch(&[], 100, &BitSampler::Uniform, &strata);
    assert_eq!(empty.unwrap().len(), 0);
}

#[test]
fn batch_size_one_campaign_equals_per_trial_campaign() {
    // `trials_per_batch: 1` must take the historical per-trial path and
    // any N > planned trials must clip, not crash.
    let (model, x, y) = setup();
    let ge = GoldenEye::parse("fp:e4m3").unwrap();
    let base = CampaignConfig {
        injections_per_layer: 2,
        kind: SiteKind::Value,
        seed: 51,
        jobs: 1,
        ..Default::default()
    };
    let per_trial = run_campaign(&ge, &model, &x, &y, &base.clone().with_trials_per_batch(1));
    let oversized = run_campaign(&ge, &model, &x, &y, &base.clone().with_trials_per_batch(64));
    assert!(per_trial.canonical_trial_jsonl() == oversized.canonical_trial_jsonl());
}
