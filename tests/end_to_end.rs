//! End-to-end integration: train a model on the synthetic task, emulate
//! number formats through the full GoldenEye pipeline, and check the
//! qualitative relationships the paper's use case A relies on.

use goldeneye::{accuracy_sweep, evaluate_accuracy, GoldenEye, LayerFilter, ParamSnapshot};
use models::DeitConfig;
use models::{train, ResNet, ResNetConfig, SyntheticDataset, TrainConfig, VisionTransformer};
use nn::Module;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

/// A tiny trained CNN shared across tests (training once keeps the suite
/// fast). `OnceLock` + rebuild because models aren't `Sync`; we retrain
/// per test via stored weights instead.
fn trained_cnn() -> (ResNet, SyntheticDataset) {
    type SavedParams = Vec<(String, Vec<f32>, Vec<usize>)>;
    static WEIGHTS: OnceLock<SavedParams> = OnceLock::new();
    let mut rng = StdRng::seed_from_u64(77);
    let model = ResNet::new(ResNetConfig::tiny(8), &mut rng);
    let data = SyntheticDataset::generate(96, 16, 4, 31);
    let weights = WEIGHTS.get_or_init(|| {
        train(
            &model,
            &data,
            &TrainConfig { epochs: 8, batch_size: 16, lr: 3e-3, ..Default::default() },
        );
        model
            .params()
            .iter()
            .map(|p| {
                let t = p.get();
                (p.name().to_string(), t.as_slice().to_vec(), t.dims().to_vec())
            })
            .collect()
    });
    // Load the cached weights (also exercised when the OnceLock was just
    // initialised — harmless).
    let mut i = 0;
    model.visit_params(&mut |p| {
        let (name, data, dims) = &weights[i];
        assert_eq!(p.name(), name);
        p.set(tensor::Tensor::from_vec(data.clone(), dims.clone()));
        i += 1;
    });
    (model, data)
}

#[test]
fn fp32_emulation_equals_native_accuracy() {
    let (model, data) = trained_cnn();
    let native = models::evaluate(&model, &data, 64, 32);
    assert!(native > 0.5, "training failed: acc {native}");
    let ge = GoldenEye::parse("fp32").unwrap();
    let emulated = evaluate_accuracy(&ge, &model, &data, 64, 32);
    assert_eq!(native, emulated);
}

#[test]
fn accuracy_degrades_with_precision() {
    let (model, data) = trained_cnn();
    let points = accuracy_sweep(&model, &data, &["fp32", "fp16", "fp:e4m3", "fp:e2m1"], 64, 32);
    let acc: Vec<f32> = points.iter().map(|p| p.accuracy).collect();
    // Wide formats are lossless here; the 4-bit one must hurt.
    assert!((acc[0] - acc[1]).abs() < 0.05, "fp16 ≈ fp32");
    assert!(acc[3] < acc[0], "e2m1 ({}) should lose accuracy vs fp32 ({})", acc[3], acc[0]);
}

#[test]
fn adaptivfloat_beats_plain_fp_at_same_width() {
    // The paper's Figure 4 observation: AFP's movable window preserves
    // accuracy at widths where plain FP collapses. AFP is defined as FP
    // without denormals plus the bias register, so the apples-to-apples
    // comparison is against `fp:e2m5:nodn` — a fixed two-binade window
    // [1, 3.94) that flushes most activations, where AFP re-centres.
    let (model, data) = trained_cnn();
    let fp = accuracy_sweep(&model, &data, &["fp:e2m5:nodn"], 64, 32)[0].accuracy;
    let afp = accuracy_sweep(&model, &data, &["afp:e2m5"], 64, 32)[0].accuracy;
    assert!(afp >= fp, "AFP e2m5 ({afp}) should be at least as accurate as FP e2m5 w/o DN ({fp})");
}

#[test]
fn transformer_pipeline_works_end_to_end() {
    let mut rng = StdRng::seed_from_u64(5);
    let model = VisionTransformer::new(DeitConfig::tiny_test(16, 4), &mut rng);
    let data = SyntheticDataset::generate(64, 16, 4, 32);
    train(
        &model,
        &data,
        &TrainConfig { epochs: 5, batch_size: 16, lr: 2e-3, ..Default::default() },
    );
    let ge = GoldenEye::parse("bfp:e8m7:b16").unwrap();
    let acc = evaluate_accuracy(&ge, &model, &data, 32, 16);
    assert!((0.0..=1.0).contains(&acc));
    // The transformer exposes many instrumented layers.
    let (x, _) = data.head_batch(1);
    let layers = ge.discover_layers(&model, x);
    assert!(layers.len() > 10, "only {} instrumented layers", layers.len());
}

#[test]
fn layer_filter_all_changes_results() {
    let (model, data) = trained_cnn();
    let (x, _) = data.head_batch(2);
    let conv_linear = GoldenEye::parse("fp:e3m2").unwrap();
    let all = GoldenEye::parse("fp:e3m2").unwrap().with_filter(LayerFilter::All);
    let a = conv_linear.run(&model, x.clone());
    let b = all.run(&model, x);
    // Quantising norm/activation/pool outputs too must change something.
    assert!(!a.allclose(&b, 1e-7), "LayerFilter::All had no effect");
}

#[test]
fn posit_works_end_to_end() {
    // The "future format" plugged in via the trait must ride the whole
    // pipeline: emulation, accuracy evaluation, value injection.
    let (model, data) = trained_cnn();
    let native = models::evaluate(&model, &data, 48, 16);
    let p16 = GoldenEye::parse("posit:16:1").unwrap();
    let acc16 = evaluate_accuracy(&p16, &model, &data, 48, 16);
    assert!((acc16 - native).abs() < 0.05, "posit16 ({acc16}) should track native ({native})");
    let p8 = GoldenEye::parse("posit:8:0").unwrap();
    let (x, _) = data.head_batch(2);
    let layers = p8.discover_layers(&model, x.clone());
    let plan = goldeneye::InjectionPlan::single(layers[0].index, inject::SiteKind::Value);
    let (logits, rec) = p8.run_with_injection(&model, x, plan, 3);
    assert!(rec.is_some());
    // Posits have no Inf: a value flip can at worst be NaR (scored by the
    // metrics penalty) but typical flips stay finite.
    assert_eq!(logits.dims(), &[2, 8]); // tiny(8) = 8 classes
}

#[test]
fn quantization_aware_training_converges() {
    // §V-B: training with format emulation hooks active (backprop through
    // the straight-through estimator) must still reduce the loss.
    use goldeneye::FaultyTrainingHook;
    use nn::Adam;
    use std::sync::Arc;
    let mut rng = StdRng::seed_from_u64(91);
    let model = ResNet::new(ResNetConfig::tiny(4), &mut rng);
    let data = SyntheticDataset::generate(64, 16, 4, 92);
    let mut opt = Adam::new(3e-3);
    let mut shuffle = StdRng::seed_from_u64(93);
    let mut first = None;
    let mut last = 0.0f32;
    for _ in 0..6 {
        for (x, y) in data.shuffled_batches(16, &mut shuffle) {
            let mut ctx = nn::Ctx::training();
            // p = 0: pure quantisation-aware training through int:8.
            ctx.add_hook(Arc::new(FaultyTrainingHook::parse("int:8", 0.0, 0).unwrap()));
            let xv = ctx.input(x);
            let logits = model.forward(&xv, &mut ctx);
            let loss = logits.cross_entropy(&y);
            let grads = loss.backward();
            opt.step(&ctx, &grads);
            last = loss.value().item();
            first.get_or_insert(last);
        }
    }
    let first = first.unwrap();
    assert!(last < first * 0.7, "QAT loss should fall: {first} → {last}");
    // And the trained model evaluates well under the format it saw.
    let ge = GoldenEye::parse("int:8").unwrap();
    let acc = evaluate_accuracy(&ge, &model, &data, 48, 16);
    assert!(acc > 0.5, "int8 accuracy after QAT: {acc}");
}

#[test]
fn snapshot_guards_against_weight_leakage_across_sweeps() {
    let (model, data) = trained_cnn();
    let snap = ParamSnapshot::capture(&model);
    let before = models::forward_logits(&model, data.head_batch(2).0);
    // Two sweeps in a row: any leakage of quantised weights would compound.
    accuracy_sweep(&model, &data, &["int:4", "fp:e2m1"], 16, 16);
    accuracy_sweep(&model, &data, &["bfp:e5m2:b8"], 16, 16);
    let after = models::forward_logits(&model, data.head_batch(2).0);
    assert!(before.allclose(&after, 0.0));
    snap.restore(&model); // no-op, but must not panic
}
