//! Integration tests of the paper's §III-B API contract across all five
//! number-format families, including property-based invariants.

use formats::{
    AdaptivFloat, BlockFloatingPoint, FixedPoint, FloatingPoint, FormatSpec, IntQuant, NumberFormat,
};
use proptest::prelude::*;
use tensor::Tensor;

fn all_formats() -> Vec<Box<dyn NumberFormat>> {
    vec![
        Box::new(FloatingPoint::new(4, 3)),
        Box::new(FloatingPoint::new(5, 10).with_denormals(false)),
        Box::new(FixedPoint::new(3, 4)),
        Box::new(IntQuant::new(8)),
        Box::new(BlockFloatingPoint::new(5, 5, 4)),
        Box::new(AdaptivFloat::new(4, 3)),
    ]
}

#[test]
fn method1_then_method2_is_stable() {
    // Method 1 (quantise) followed by Method 2 (decode) must be a fixed
    // point: re-quantising the decoded tensor changes nothing.
    let x = Tensor::from_vec(vec![0.17, -2.4, 0.0, 11.0, -0.003, 5e-4, 100.0, -63.0], [8]);
    for f in all_formats() {
        let q1 = f.real_to_format_tensor(&x);
        let real = f.format_to_real_tensor(&q1);
        let q2 = f.real_to_format_tensor(&real);
        assert_eq!(q1.values, q2.values, "{} not idempotent", f.name());
    }
}

#[test]
fn methods_3_and_4_roundtrip_on_quantized_values() {
    let x = Tensor::from_vec(vec![0.17, -2.4, 0.0, 11.0, -0.003, 5e-4, 100.0, -63.0], [8]);
    for f in all_formats() {
        let q = f.real_to_format_tensor(&x);
        for i in 0..x.numel() {
            let v = q.values.as_slice()[i];
            let bits = f.real_to_format(v, &q.meta, i);
            assert_eq!(bits.len() as u32, f.bit_width(), "{} bit width", f.name());
            let back = f.format_to_real(&bits, &q.meta, i);
            let tol = v.abs() * 1e-6;
            assert!((back - v).abs() <= tol, "{}: element {i} {v} -> {back}", f.name());
        }
    }
}

#[test]
fn quantization_error_bounded_by_dynamic_range() {
    // Every in-range value quantises to within one representable step;
    // in particular the quantised value never exceeds the format max.
    let x = Tensor::from_vec(vec![0.5, -0.25, 3.0, -1.5], [4]);
    for f in all_formats() {
        let q = f.real_to_format_tensor(&x);
        let max = f.dynamic_range().max_abs as f32;
        for &v in q.values.as_slice() {
            assert!(v.abs() <= max * 1.0001, "{}: {v} beyond max {max}", f.name());
        }
    }
}

#[test]
fn spec_strings_cover_all_families() {
    for s in ["fp:e4m3", "fxp:1:3:4", "int:8", "bfp:e5m5:b4", "afp:e4m3"] {
        let spec: FormatSpec = s.parse().unwrap();
        let f = spec.build();
        let x = Tensor::from_vec(vec![1.0, -1.0], [2]);
        let q = f.real_to_format_tensor(&x);
        assert_eq!(q.values.numel(), 2);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quantisation is idempotent for arbitrary finite inputs.
    #[test]
    fn prop_quantize_idempotent(values in prop::collection::vec(-1e6f32..1e6, 1..32)) {
        let x = Tensor::from_vec(values.clone(), [values.len()]);
        for f in all_formats() {
            let q1 = f.real_to_format_tensor(&x);
            let q2 = f.real_to_format_tensor(&q1.values);
            prop_assert_eq!(&q1.values, &q2.values, "{} not idempotent", f.name());
        }
    }

    /// Quantisation preserves sign (or maps to zero).
    #[test]
    fn prop_quantize_preserves_sign(values in prop::collection::vec(-1e4f32..1e4, 1..16)) {
        let x = Tensor::from_vec(values.clone(), [values.len()]);
        for f in all_formats() {
            let q = f.real_to_format_tensor(&x);
            for (i, (&orig, &quant)) in values.iter().zip(q.values.as_slice()).enumerate() {
                prop_assert!(
                    quant == 0.0 || (quant > 0.0) == (orig > 0.0),
                    "{}: element {i} {orig} -> {quant}", f.name()
                );
            }
        }
    }

    /// Quantisation is monotone: x <= y implies q(x) <= q(y) within a
    /// shared tensor (same metadata).
    #[test]
    fn prop_quantize_monotone(a in -1e4f32..1e4, b in -1e4f32..1e4) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let x = Tensor::from_vec(vec![lo, hi], [2]);
        for f in all_formats() {
            let q = f.real_to_format_tensor(&x);
            prop_assert!(
                q.values.as_slice()[0] <= q.values.as_slice()[1],
                "{}: q({lo}) > q({hi})", f.name()
            );
        }
    }

    /// A double flip of the same bit restores the original value.
    #[test]
    fn prop_flip_twice_is_identity(
        values in prop::collection::vec(-100.0f32..100.0, 4..8),
        element_seed in 0usize..1000,
        bit_seed in 0usize..1000,
    ) {
        let x = Tensor::from_vec(values.clone(), [values.len()]);
        for f in all_formats() {
            let mut q = f.real_to_format_tensor(&x);
            let orig = q.values.clone();
            let element = element_seed % q.values.numel();
            let bit = bit_seed % f.bit_width() as usize;
            let first = inject::flip_value(f.as_ref(), &mut q, element, bit);
            // A flip is value-reversible only if re-encoding the corrupted
            // value reproduces the flipped bit pattern (flips into the
            // reserved Inf/NaN exponent, or into flushed denormals, are
            // canonicalised by Method 3 and lose the original pattern).
            let expected_bits = f
                .real_to_format(first.old, &q.meta, element)
                .with_flip(bit);
            if f.real_to_format(first.new, &q.meta, element) != expected_bits {
                continue;
            }
            inject::flip_value(f.as_ref(), &mut q, element, bit);
            prop_assert_eq!(&q.values, &orig, "{}: flip({},{}) twice", f.name(), element, bit);
        }
    }

    /// Value flips never touch other elements.
    #[test]
    fn prop_flip_is_local(
        values in prop::collection::vec(-100.0f32..100.0, 4..8),
        element_seed in 0usize..1000,
        bit_seed in 0usize..1000,
    ) {
        let x = Tensor::from_vec(values.clone(), [values.len()]);
        for f in all_formats() {
            let mut q = f.real_to_format_tensor(&x);
            let orig = q.values.clone();
            let element = element_seed % q.values.numel();
            let bit = bit_seed % f.bit_width() as usize;
            inject::flip_value(f.as_ref(), &mut q, element, bit);
            for i in 0..orig.numel() {
                if i != element {
                    prop_assert_eq!(
                        q.values.as_slice()[i],
                        orig.as_slice()[i],
                        "{}: flip({},{}) leaked to {}", f.name(), element, bit, i
                    );
                }
            }
        }
    }
}
