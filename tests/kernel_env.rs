//! Startup kernel selection via `GOLDENEYE_KERNEL` — in its own test
//! binary so the assertion on the process-global dispatch state cannot
//! race with tests that call `kernels::force` elsewhere. The CI
//! `kernel-matrix` job runs the whole test suite once per env value; this
//! test is what proves the requested kernel was actually picked up.

use tensor::linalg::kernels;

#[test]
fn env_var_selects_the_startup_kernel() {
    let active = kernels::active();
    match std::env::var("GOLDENEYE_KERNEL") {
        Ok(v) => {
            let requested = kernels::Kernel::parse(&v)
                .unwrap_or_else(|| panic!("GOLDENEYE_KERNEL={v} is not a known kernel"));
            // An unsupported request clamps down to the best the host has.
            let expect = if kernels::is_supported(requested) {
                requested
            } else {
                kernels::best_supported()
            };
            assert_eq!(active, expect, "GOLDENEYE_KERNEL={v} not honoured");
        }
        Err(_) => assert_eq!(
            active,
            kernels::best_supported(),
            "default dispatch must pick the best supported kernel"
        ),
    }
}
