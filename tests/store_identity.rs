//! The artifact store's bit-exactness contract: every entry point that
//! can route offline work through the store — campaigns, weight
//! campaigns, accuracy evaluation, DSE — must produce **byte-identical**
//! results store-disabled, cold-cache, and warm-cache, at multiple
//! `jobs` × `trials-per-batch` settings. The store may only change how
//! fast an answer arrives, never the answer.

use goldeneye::dse::{accuracy_eval_stored, search, DseFamily};
use goldeneye::{
    evaluate_accuracy_jobs, run_campaign, run_weight_campaign, CampaignConfig, GoldenEye,
};
use inject::SiteKind;
use models::{train, ResNet, ResNetConfig, SyntheticDataset, TrainConfig};
use std::sync::Arc;
use tensor::Tensor;

fn setup() -> (ResNet, SyntheticDataset, Tensor, Vec<usize>) {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(23);
    let model = ResNet::new(ResNetConfig::tiny(8), &mut rng);
    let data = SyntheticDataset::generate(64, 16, 4, 19);
    train(
        &model,
        &data,
        &TrainConfig { epochs: 5, batch_size: 16, lr: 3e-3, ..Default::default() },
    );
    let (x, y) = data.head_batch(8);
    (model, data, x, y)
}

fn temp_store_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("goldeneye_store_identity_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The pinned `jobs` × `trials_per_batch` grid every identity check runs
/// over (serial per-trial, and parallel batched).
const COMBOS: [(usize, usize); 2] = [(1, 0), (4, 2)];

#[test]
fn campaign_jsonl_is_byte_identical_disabled_cold_warm() {
    let (model, _data, x, y) = setup();
    let dir = temp_store_dir("campaign");
    for (jobs, batch) in COMBOS {
        let cfg = CampaignConfig {
            injections_per_layer: 4,
            kind: SiteKind::Value,
            seed: 7,
            jobs,
            trials_per_batch: batch,
            ..Default::default()
        };
        let disabled = {
            let ge = GoldenEye::parse("fp:e4m3").unwrap();
            run_campaign(&ge, &model, &x, &y, &cfg).canonical_trial_jsonl()
        };
        let cold = {
            let store = Arc::new(store::Store::open(&dir).unwrap());
            let ge = GoldenEye::parse("fp:e4m3").unwrap().with_store(store);
            run_campaign(&ge, &model, &x, &y, &cfg).canonical_trial_jsonl()
        };
        // A fresh handle on the populated directory ≈ a second process.
        let warm = {
            let store = Arc::new(store::Store::open(&dir).unwrap());
            let ge = GoldenEye::parse("fp:e4m3").unwrap().with_store(store);
            run_campaign(&ge, &model, &x, &y, &cfg).canonical_trial_jsonl()
        };
        assert!(!disabled.is_empty());
        assert!(disabled == cold, "jobs={jobs} batch={batch}: cold store changed campaign JSONL");
        assert!(disabled == warm, "jobs={jobs} batch={batch}: warm store changed campaign JSONL");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn weight_campaign_jsonl_is_byte_identical_disabled_cold_warm() {
    let (model, _data, x, y) = setup();
    let dir = temp_store_dir("weight");
    for (jobs, batch) in COMBOS {
        let cfg = CampaignConfig {
            injections_per_layer: 3,
            kind: SiteKind::Value,
            seed: 11,
            jobs,
            trials_per_batch: batch,
            ..Default::default()
        };
        let disabled = {
            let ge = GoldenEye::parse("int:8").unwrap();
            run_weight_campaign(&ge, &model, &x, &y, &cfg).canonical_trial_jsonl()
        };
        let cold = {
            let store = Arc::new(store::Store::open(&dir).unwrap());
            let ge = GoldenEye::parse("int:8").unwrap().with_store(store);
            run_weight_campaign(&ge, &model, &x, &y, &cfg).canonical_trial_jsonl()
        };
        let (warm, stats) = {
            let store = Arc::new(store::Store::open(&dir).unwrap());
            let ge = GoldenEye::parse("int:8").unwrap().with_store(store.clone());
            let out = run_weight_campaign(&ge, &model, &x, &y, &cfg).canonical_trial_jsonl();
            (out, store.stats())
        };
        assert!(!disabled.is_empty());
        assert!(disabled == cold, "jobs={jobs} batch={batch}: cold store changed weight JSONL");
        assert!(disabled == warm, "jobs={jobs} batch={batch}: warm store changed weight JSONL");
        assert!(stats.hits > 0, "jobs={jobs} batch={batch}: warm run never hit the store");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn evaluate_accuracy_is_bit_identical_disabled_cold_warm() {
    let (model, data, _x, _y) = setup();
    let dir = temp_store_dir("evaluate");
    for jobs in [1usize, 4] {
        let disabled = {
            let ge = GoldenEye::parse("fp:e5m2").unwrap();
            evaluate_accuracy_jobs(&ge, &model, &data, 32, 16, jobs)
        };
        let cold = {
            let store = Arc::new(store::Store::open(&dir).unwrap());
            let ge = GoldenEye::parse("fp:e5m2").unwrap().with_store(store);
            evaluate_accuracy_jobs(&ge, &model, &data, 32, 16, jobs)
        };
        let warm = {
            let store = Arc::new(store::Store::open(&dir).unwrap());
            let ge = GoldenEye::parse("fp:e5m2").unwrap().with_store(store);
            evaluate_accuracy_jobs(&ge, &model, &data, 32, 16, jobs)
        };
        assert_eq!(disabled.to_bits(), cold.to_bits(), "jobs={jobs}: cold store moved accuracy");
        assert_eq!(disabled.to_bits(), warm.to_bits(), "jobs={jobs}: warm store moved accuracy");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dse_trail_is_bit_identical_disabled_cold_warm() {
    let (model, data, _x, _y) = setup();
    let dir = temp_store_dir("dse");
    let baseline = models::evaluate(&model, &data, 32, 16);
    let trail = |store: Option<Arc<store::Store>>| -> Vec<(String, u32, bool)> {
        let result = search(
            DseFamily::Fp,
            accuracy_eval_stored(&model, &data, 32, 16, 2, store),
            baseline,
            0.05,
        );
        result
            .nodes
            .iter()
            .map(|n| (n.spec.to_string(), n.accuracy.to_bits(), n.accepted))
            .collect()
    };
    let disabled = trail(None);
    let cold = trail(Some(Arc::new(store::Store::open(&dir).unwrap())));
    let warm_store = Arc::new(store::Store::open(&dir).unwrap());
    let warm = trail(Some(warm_store.clone()));
    assert!(!disabled.is_empty());
    assert_eq!(disabled, cold, "cold store changed the DSE visit trail");
    assert_eq!(disabled, warm, "warm store changed the DSE visit trail");
    assert!(warm_store.stats().hits > 0, "warm DSE never hit the store");
    std::fs::remove_dir_all(&dir).ok();
}
