//! Thread-safety contract of the campaign executor and the shared model
//! state: parallel campaigns must be bit-identical to serial ones, and
//! `ParamSnapshot` must restore a model even after a worker thread
//! panicked while holding a parameter lock (lock poisoning).

use goldeneye::{
    run_campaign, run_weight_campaign, CampaignConfig, CampaignResult, GoldenEye, ParamSnapshot,
};
use inject::SiteKind;
use models::{train, ResNet, ResNetConfig, SyntheticDataset, TrainConfig};
use nn::Module;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup() -> (ResNet, tensor::Tensor, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(13);
    let model = ResNet::new(ResNetConfig::tiny(8), &mut rng);
    let data = SyntheticDataset::generate(64, 16, 4, 17);
    train(
        &model,
        &data,
        &TrainConfig { epochs: 5, batch_size: 16, lr: 3e-3, ..Default::default() },
    );
    let (x, y) = data.head_batch(8);
    (model, x, y)
}

/// Exact (bitwise) equality of every per-layer statistic two campaign runs
/// produce. `f32::to_bits` so that `-0.0 != 0.0` and NaNs would also be
/// caught — "bit-identical" is the executor's contract, not "close".
fn assert_bit_identical(a: &CampaignResult, b: &CampaignResult) {
    assert_eq!(a.layers.len(), b.layers.len());
    for (la, lb) in a.layers.iter().zip(&b.layers) {
        assert_eq!(la.layer, lb.layer);
        assert_eq!(la.name, lb.name);
        assert_eq!(la.injections, lb.injections, "layer {}", la.name);
        for (sa, sb) in [(&la.delta_loss, &lb.delta_loss), (&la.mismatch, &lb.mismatch)] {
            assert_eq!(sa.count(), sb.count(), "layer {}", la.name);
            assert_eq!(sa.mean().to_bits(), sb.mean().to_bits(), "layer {}", la.name);
            assert_eq!(sa.variance().to_bits(), sb.variance().to_bits(), "layer {}", la.name);
            assert_eq!(sa.min(), sb.min(), "layer {}", la.name);
            assert_eq!(sa.max(), sb.max(), "layer {}", la.name);
        }
    }
}

#[test]
fn activation_campaign_is_deterministic_across_jobs() {
    let (model, x, y) = setup();
    let ge = GoldenEye::parse("fp:e4m3").unwrap();
    let cfg = CampaignConfig {
        injections_per_layer: 6,
        kind: SiteKind::Value,
        seed: 41,
        jobs: 1,
        ..Default::default()
    };
    let serial = run_campaign(&ge, &model, &x, &y, &cfg);
    let parallel = run_campaign(&ge, &model, &x, &y, &cfg.clone().with_jobs(4));
    assert_bit_identical(&serial, &parallel);
}

/// Per-trial records, serialised in canonical (layer, trial) order with
/// worker ids and timestamps stripped, must be **byte**-identical between
/// a serial run and a `--jobs 4` run — the contract consumers of the
/// per-trial JSONL stream rely on.
#[test]
fn per_trial_jsonl_is_byte_identical_across_jobs() {
    let (model, x, y) = setup();
    let ge = GoldenEye::parse("fp:e4m3").unwrap();
    let cfg = CampaignConfig {
        injections_per_layer: 5,
        kind: SiteKind::Value,
        seed: 29,
        jobs: 1,
        ..Default::default()
    };
    let serial = run_campaign(&ge, &model, &x, &y, &cfg);
    let parallel = run_campaign(&ge, &model, &x, &y, &cfg.clone().with_jobs(4));
    let a = serial.canonical_trial_jsonl();
    let b = parallel.canonical_trial_jsonl();
    assert_eq!(a.len(), b.len(), "serial and parallel JSONL lengths differ");
    assert!(a == b, "canonical per-trial JSONL differs between jobs=1 and jobs=4");
    assert!(!a.is_empty(), "campaign produced no trial records");
    // Metadata-site campaigns exercise the word/bit site encoding.
    let mcfg = CampaignConfig { kind: SiteKind::Metadata, ..cfg };
    let bfp = GoldenEye::parse("bfp:e8m7:tensor").unwrap();
    let ms = run_campaign(&bfp, &model, &x, &y, &mcfg);
    let mp = run_campaign(&bfp, &model, &x, &y, &mcfg.clone().with_jobs(4));
    assert!(
        ms.canonical_trial_jsonl() == mp.canonical_trial_jsonl(),
        "metadata-site canonical JSONL differs between jobs=1 and jobs=4"
    );
}

/// The batched checkpoint/replay engine must emit the exact same
/// canonical per-trial JSONL as the serial `--jobs 1` per-trial engine,
/// for every combination of batch size and worker-thread count — the
/// contract that lets batched campaigns substitute for serial ones.
#[test]
fn batched_campaign_jsonl_is_byte_identical_across_batch_sizes_and_jobs() {
    let (model, x, y) = setup();
    let ge = GoldenEye::parse("fp:e4m3").unwrap();
    let base = CampaignConfig {
        injections_per_layer: 6,
        kind: SiteKind::Value,
        seed: 43,
        jobs: 1,
        ..Default::default()
    };
    let serial = run_campaign(&ge, &model, &x, &y, &base);
    let reference = serial.canonical_trial_jsonl();
    assert!(!reference.is_empty());
    for batch in [0usize, 2, 4, 6] {
        for jobs in [1usize, 2, 4] {
            let cfg = base.clone().with_trials_per_batch(batch).with_jobs(jobs);
            let run = run_campaign(&ge, &model, &x, &y, &cfg);
            assert!(
                run.canonical_trial_jsonl() == reference,
                "batch {batch} jobs {jobs}: canonical JSONL diverged from serial per-trial run"
            );
            assert_bit_identical(&serial, &run);
        }
    }
}

/// Same contract for metadata-site faults (batched replicas slice the
/// packed tensor, so per-replica metadata words must address identically
/// to a serial [B, ...] run).
#[test]
fn batched_metadata_campaign_jsonl_matches_serial_across_jobs() {
    let (model, x, y) = setup();
    let ge = GoldenEye::parse("bfp:e8m7:tensor").unwrap();
    let base = CampaignConfig {
        injections_per_layer: 4,
        kind: SiteKind::Metadata,
        seed: 47,
        jobs: 1,
        ..Default::default()
    };
    let reference = run_campaign(&ge, &model, &x, &y, &base).canonical_trial_jsonl();
    for (batch, jobs) in [(3usize, 2usize), (4, 4)] {
        let cfg = base.clone().with_trials_per_batch(batch).with_jobs(jobs);
        let run = run_campaign(&ge, &model, &x, &y, &cfg);
        assert!(
            run.canonical_trial_jsonl() == reference,
            "metadata batch {batch} jobs {jobs}: JSONL diverged"
        );
    }
}

#[test]
fn weight_campaign_trial_jsonl_is_byte_identical_across_jobs() {
    let (model, x, y) = setup();
    let ge = GoldenEye::parse("int:8").unwrap();
    let cfg = CampaignConfig {
        injections_per_layer: 4,
        kind: SiteKind::Value,
        seed: 31,
        jobs: 1,
        ..Default::default()
    };
    let serial = run_weight_campaign(&ge, &model, &x, &y, &cfg);
    let parallel = run_weight_campaign(&ge, &model, &x, &y, &cfg.clone().with_jobs(4));
    assert!(
        serial.canonical_trial_jsonl() == parallel.canonical_trial_jsonl(),
        "weight-campaign canonical JSONL differs between jobs=1 and jobs=4"
    );
}

#[test]
fn weight_campaign_is_deterministic_across_jobs() {
    let (model, x, y) = setup();
    let ge = GoldenEye::parse("int:8").unwrap();
    let cfg = CampaignConfig {
        injections_per_layer: 6,
        kind: SiteKind::Value,
        seed: 42,
        jobs: 1,
        ..Default::default()
    };
    let serial = run_weight_campaign(&ge, &model, &x, &y, &cfg);
    let parallel = run_weight_campaign(&ge, &model, &x, &y, &cfg.clone().with_jobs(4));
    assert_bit_identical(&serial, &parallel);
    // Weight campaigns mutate shared parameter storage (quantise, then
    // restore); after both runs the model must still produce the native
    // forward pass — i.e. the restore really happened.
    let native = GoldenEye::parse("fp32").unwrap();
    let a = native.run(&model, x.clone());
    let b = native.run(&model, x);
    assert!(a.allclose(&b, 0.0), "model left in inconsistent state");
}

#[test]
fn snapshot_restores_after_worker_thread_panics() {
    let (model, x, _) = setup();
    let ge = GoldenEye::parse("fp16").unwrap();
    let before = ge.run(&model, x.clone());
    let snap = ParamSnapshot::capture(&model);

    // A worker thread dies mid-update while holding the write lock on a
    // parameter, poisoning it. `Param`'s accessors treat poisoning as
    // survivable (state is replaced wholesale, never left torn), so the
    // snapshot restore — and every later forward pass — must still work.
    let params = model.params();
    let victim = params.iter().find(|p| p.name().ends_with("weight")).expect("has weights");
    let joined = std::thread::scope(|s| {
        s.spawn(|| {
            victim.update(|t| {
                let n = t.numel();
                *t = tensor::Tensor::zeros([n]); // torn shape, then die
                panic!("worker dies holding the param lock");
            });
        })
        .join()
    });
    assert!(joined.is_err(), "worker was expected to panic");

    snap.restore(&model);
    let after = ge.run(&model, x);
    assert!(
        before.allclose(&after, 0.0),
        "restore after poisoned lock must reproduce the pre-panic forward pass"
    );
}

#[test]
fn param_overrides_do_not_leak_across_threads() {
    // The weight campaign installs faulty tensors via thread-local
    // overrides; a concurrent reader on another thread must always see
    // the clean value.
    let (model, x, _) = setup();
    let ge = GoldenEye::parse("fp32").unwrap();
    let clean = ge.run(&model, x.clone());
    let params = model.params();
    let victim = params.iter().find(|p| p.name().ends_with("weight")).expect("has weights");
    let _guard = victim.override_local(tensor::Tensor::zeros(victim.get().shape().dims()));
    let overridden = ge.run(&model, x.clone());
    assert!(!clean.allclose(&overridden, 1e-7), "override had no effect on this thread");
    std::thread::scope(|s| {
        s.spawn(|| {
            let other = ge.run(&model, x.clone());
            assert!(clean.allclose(&other, 0.0), "thread-local override leaked to another thread");
        });
    });
}
