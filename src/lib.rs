//! Umbrella crate for the goldeneye-rs workspace.
//!
//! Re-exports every sub-crate so examples and integration tests can use a
//! single dependency. Library users should depend on the individual crates
//! (most importantly [`goldeneye`]) directly.

pub use formats;
pub use goldeneye;
pub use inject;
pub use metrics;
pub use models;
pub use nn;
pub use tensor;
